//! Gather-scatter bookkeeping for cross-source batch dispatch.
//!
//! The serve reactor decodes query batches from many connections, but
//! the worker pool is at its best answering one large batch (chunked
//! dispatch amortizes per-task overhead, and grid-routed shards reorder
//! big batches for locality). A [`Coalescer`] is the queue in between:
//! `push` concatenates each source's items while remembering the span
//! they occupy, `items` hands the pool one contiguous workload, and
//! `scatter` walks the spans back out so every source receives exactly
//! its own results, in the order it queued them.
//!
//! The merge is pure concatenation — item `i` of the combined batch is
//! item `i` of some source's queue — so any per-item batch operation
//! (the synopsis batch answerers are per-item and bit-identical across
//! worker counts) produces results identical to dispatching each
//! source alone.

use std::ops::Range;

/// A FIFO that concatenates per-source batches into one contiguous
/// workload and scatters the results back per source.
#[derive(Debug)]
pub struct Coalescer<K, T> {
    items: Vec<T>,
    spans: Vec<(K, Range<usize>)>,
}

impl<K, T> Default for Coalescer<K, T> {
    fn default() -> Self {
        Self {
            items: Vec::new(),
            spans: Vec::new(),
        }
    }
}

impl<K, T> Coalescer<K, T> {
    /// An empty coalescer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue one source's batch under `key`. Empty batches still record
    /// a span: a source that asked for zero answers must still receive
    /// its (empty) reply in turn.
    pub fn push(&mut self, key: K, batch: Vec<T>) {
        let start = self.items.len();
        self.items.extend(batch);
        self.spans.push((key, start..self.items.len()));
    }

    /// Whether nothing has been queued.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total queued items across all sources.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// How many per-source batches are queued.
    pub fn spans(&self) -> usize {
        self.spans.len()
    }

    /// The combined workload, in queue order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// The sources that queued batches, in queue order — for reporting
    /// a whole-dispatch failure back to every participant when there
    /// are no results to [`Coalescer::scatter`].
    pub fn sources(&self) -> impl Iterator<Item = &K> {
        self.spans.iter().map(|(key, _)| key)
    }

    /// Walk the per-source result slices back out, in queue order.
    /// `results` must hold exactly one result per queued item (the
    /// contract of every batch answerer).
    pub fn scatter<'a, R>(
        &'a self,
        results: &'a [R],
    ) -> impl Iterator<Item = (&'a K, &'a [R])> + 'a {
        assert_eq!(
            results.len(),
            self.items.len(),
            "batch dispatch must return one result per query"
        );
        self.spans
            .iter()
            .map(move |(key, span)| (key, &results[span.clone()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concatenates_and_scatters_in_queue_order() {
        let mut q: Coalescer<&str, u32> = Coalescer::new();
        assert!(q.is_empty());
        q.push("a", vec![1, 2]);
        q.push("b", vec![]);
        q.push("a", vec![3]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.spans(), 3);
        assert_eq!(q.items(), &[1, 2, 3]);

        let results: Vec<u32> = q.items().iter().map(|x| x * 10).collect();
        let scattered: Vec<(&str, Vec<u32>)> =
            q.scatter(&results).map(|(k, r)| (*k, r.to_vec())).collect();
        assert_eq!(
            scattered,
            vec![("a", vec![10, 20]), ("b", vec![]), ("a", vec![30])]
        );
    }

    #[test]
    #[should_panic(expected = "one result per query")]
    fn scatter_refuses_a_short_result_vector() {
        let mut q: Coalescer<u8, u8> = Coalescer::new();
        q.push(0, vec![1, 2, 3]);
        let _ = q.scatter(&[9u8]).count();
    }
}
