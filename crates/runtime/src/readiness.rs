//! Socket readiness for a multiplexed front end.
//!
//! A reactor that owns many nonblocking sockets on one thread needs to
//! sleep until *any* of them has bytes (or buffer space) — busy-spinning
//! would burn the core the worker pool wants, and a fixed sleep tick
//! would add its full latency to every request. This module wraps the
//! C library's `poll(2)` (always linked; no crates.io dependency — the
//! same approach as [`crate::shutdown`]'s `signal(2)` binding) behind a
//! portable [`wait`] call.
//!
//! On platforms without `poll(2)` the fallback sleeps one short tick
//! and reports every descriptor ready, degrading the reactor to the
//! try-every-socket tick loop the serve layer's accept path always
//! used — correct (all sockets are nonblocking), just less efficient.

use std::time::Duration;

/// One descriptor in a [`wait`] set: which events the caller wants,
/// and — filled in by the call — which it got.
#[derive(Debug, Clone, Copy, Default)]
pub struct PollEntry {
    /// The raw descriptor (`as_raw_fd()` on Unix; ignored by the
    /// fallback implementation).
    pub fd: i64,
    /// Wake when the descriptor has bytes to read (or a pending
    /// accept).
    pub want_read: bool,
    /// Wake when the descriptor can accept more written bytes.
    pub want_write: bool,
    /// Out: readable now (includes EOF/hangup — a read will not block).
    pub readable: bool,
    /// Out: writable now.
    pub writable: bool,
    /// Out: the peer hung up or the descriptor is in an error state;
    /// the next read/write will surface it.
    pub closed: bool,
}

impl PollEntry {
    /// An entry waiting for readability only.
    pub fn read(fd: i64) -> Self {
        Self {
            fd,
            want_read: true,
            ..Self::default()
        }
    }

    /// An entry waiting for readability and writability.
    pub fn read_write(fd: i64) -> Self {
        Self {
            fd,
            want_read: true,
            want_write: true,
            ..Self::default()
        }
    }
}

/// Block until at least one entry is ready or `timeout` elapses,
/// filling in each entry's readiness flags. Returns how many entries
/// reported an event (0 on timeout or interruption — callers poll in a
/// loop either way).
pub fn wait(entries: &mut [PollEntry], timeout: Duration) -> usize {
    imp::wait(entries, timeout)
}

#[cfg(unix)]
mod imp {
    use super::PollEntry;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` from `poll(2)`; identical layout on every Unix.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        /// `int poll(struct pollfd *fds, nfds_t nfds, int timeout)`.
        /// `nfds_t` is `unsigned long` on Linux and `unsigned int` on
        /// the BSDs; passing a zero-extended `c_ulong` is correct for
        /// both ABIs on every supported 64-bit target.
        fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
    }

    pub fn wait(entries: &mut [PollEntry], timeout: Duration) -> usize {
        let mut fds: Vec<PollFd> = entries
            .iter()
            .map(|e| PollFd {
                fd: e.fd as i32,
                events: if e.want_read { POLLIN } else { 0 }
                    | if e.want_write { POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let ms: i32 = timeout.as_millis().min(i32::MAX as u128) as i32;
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as core::ffi::c_ulong, ms) };
        if rc <= 0 {
            // timeout, or EINTR/ENOMEM — the caller's loop retries
            return 0;
        }
        let mut ready = 0;
        for (entry, fd) in entries.iter_mut().zip(&fds) {
            let r = fd.revents;
            entry.readable = r & (POLLIN | POLLHUP | POLLERR) != 0;
            entry.writable = r & POLLOUT != 0;
            entry.closed = r & (POLLHUP | POLLERR | POLLNVAL) != 0;
            if r != 0 {
                ready += 1;
            }
        }
        ready
    }
}

#[cfg(not(unix))]
mod imp {
    use super::PollEntry;
    use std::time::Duration;

    /// No `poll(2)`: sleep one short tick and report everything ready;
    /// the caller's nonblocking reads/writes sort out reality.
    pub fn wait(entries: &mut [PollEntry], timeout: Duration) -> usize {
        std::thread::sleep(timeout.min(Duration::from_millis(15)));
        for entry in entries.iter_mut() {
            entry.readable = entry.want_read;
            entry.writable = entry.want_write;
            entry.closed = false;
        }
        entries.len()
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn wakes_on_readable_and_times_out_when_silent() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();

        // silent peer: poll times out with nothing ready
        let mut entries = [PollEntry::read(server.as_raw_fd() as i64)];
        assert_eq!(wait(&mut entries, Duration::from_millis(20)), 0);
        assert!(!entries[0].readable);

        // a written byte wakes the poll well before the long timeout
        client.write_all(b"x").unwrap();
        let started = Instant::now();
        let ready = wait(&mut entries, Duration::from_secs(10));
        assert_eq!(ready, 1);
        assert!(entries[0].readable);
        assert!(started.elapsed() < Duration::from_secs(5));

        // a hangup reads as readable (EOF) so the reactor notices
        drop(client);
        let mut entries = [PollEntry::read(server.as_raw_fd() as i64)];
        assert_eq!(wait(&mut entries, Duration::from_secs(10)), 1);
        assert!(entries[0].readable);
    }

    #[test]
    fn reports_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut entries = [PollEntry::read_write(client.as_raw_fd() as i64)];
        assert!(wait(&mut entries, Duration::from_secs(5)) >= 1);
        assert!(entries[0].writable, "fresh socket has send-buffer space");
    }
}
