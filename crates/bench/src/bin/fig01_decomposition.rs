//! Figure 1: an illustrative spatial decomposition tree.
//!
//! Builds the noise-free quadtree (`T*`) over a 12-point dataset shaped
//! like the paper's example — a dense cluster that pulls the tree deep in
//! one corner — and prints the node/region/count structure plus the
//! traversal cases for one range query.

use privtree_core::nonprivate::nonprivate_tree;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::{QuadDomain, SplitConfig};

fn main() {
    // 12 points: 8 clustered in the north-west cell (the paper's v4
    // region splits again), sparse elsewhere
    let pts: Vec<[f64; 2]> = vec![
        [0.05, 0.93],
        [0.10, 0.90],
        [0.15, 0.95],
        [0.08, 0.85],
        [0.20, 0.88],
        [0.12, 0.97],
        [0.18, 0.92],
        [0.22, 0.86],
        [0.70, 0.80], // north-east, lone
        [0.30, 0.30],
        [0.35, 0.20], // south-west pair
        [0.80, 0.25], // south-east, lone
    ];
    let mut data = PointSet::new(2);
    for p in &pts {
        data.push(p);
    }
    let mut domain = QuadDomain::new(&data, Rect::unit(2), SplitConfig::full(2));
    // θ = 2: split any region holding more than two points
    let tree = nonprivate_tree(&mut domain, 2.0, Some(3));

    println!("== Figure 1: a spatial decomposition tree (noise-free, theta = 2) ==");
    let mut label = 0usize;
    let rendered = tree.render(|_, node| {
        label += 1;
        format!(
            "v{:<2} dom = {}  ({} points)",
            label,
            node.rect,
            node.count()
        )
    });
    println!("{rendered}");

    // the dashed-rectangle query of Figure 1
    let q = Rect::new(&[0.55, 0.55], &[0.95, 0.98]);
    println!("range query q = {q}: traversal cases");
    for id in tree.ids() {
        let node = tree.payload(id);
        let case = if !node.rect.intersects(&q) {
            "1 disjoint  -> ignore"
        } else if q.contains_rect(&node.rect) {
            "2 contained -> add count"
        } else if !tree.is_leaf(id) {
            "3 partial   -> recurse"
        } else {
            "4 part.leaf -> scale by overlap"
        };
        println!("  depth {} {}  case {case}", tree.depth(id), node.rect);
    }
}
