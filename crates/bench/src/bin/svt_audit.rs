//! Section 5 + Appendix A: the SVT privacy audits.
//!
//! Prints, for the paper's counterexample datasets:
//!
//! * Lemma 5.1 — the binary SVT's exact privacy loss as a function of the
//!   query count k (grows like k/(2λ), blowing past the claimed 2ε);
//! * Claim 2 refutation — the vanilla SVT's loss (≈ k/λ);
//! * Lemma A.1 — the improved SVT's loss stays ≤ ε over an exhaustive
//!   neighbor/pattern sweep;
//! * the PrivTree control group — the exact Theorem 3.1 audit on a toy
//!   domain stays ≤ ε at unbounded depth.

use privtree_core::audit::audit_privtree;
use privtree_core::domain::LineDomain;
use privtree_core::params::PrivTreeParams;
use privtree_dp::budget::Epsilon;
use privtree_svt::audit::{claim_2_log_ratio, improved_event_log_prob, lemma_5_1_log_ratio};

fn main() {
    let eps = 1.0;
    let lambda = 2.0 / eps; // the refuted Claim 1 calibration

    println!("== Lemma 5.1: binary SVT privacy loss (lambda = 2/eps = {lambda}) ==");
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "k", "exact loss", "bound k/(2l)", "vs 2eps"
    );
    for k in [4usize, 8, 16, 32, 64] {
        let loss = lemma_5_1_log_ratio(k, lambda);
        println!(
            "{:>6} {:>14.4} {:>14.4} {:>10}",
            k,
            loss,
            k as f64 / (2.0 * lambda),
            if loss > 2.0 * eps { "VIOLATED" } else { "ok" }
        );
    }

    println!("\n== Claim 2 refutation: vanilla SVT privacy loss ==");
    println!("{:>6} {:>14} {:>14}", "k", "exact loss", "predicted k/l");
    for k in [4usize, 8, 16, 32] {
        let loss = claim_2_log_ratio(k, lambda);
        println!("{:>6} {:>14.4} {:>14.4}", k, loss, k as f64 / lambda);
    }

    println!("\n== Lemma A.1: improved SVT stays within eps ==");
    let t = 2usize;
    let k = 5usize;
    let base = [0.0, 1.0, -1.0, 0.5, 2.0];
    let mut worst = 0.0f64;
    for delta_bits in 0..(1u32 << k) {
        let neighbor: Vec<f64> = (0..k)
            .map(|i| base[i] + f64::from((delta_bits >> i) & 1))
            .collect();
        for pat_bits in 0..(1u32 << k) {
            let pattern: Vec<bool> = (0..k).map(|i| (pat_bits >> i) & 1 == 1).collect();
            let ones = pattern.iter().filter(|b| **b).count();
            if ones > t || (ones == t && !pattern[k - 1]) {
                continue;
            }
            let lp_a = improved_event_log_prob(&base, &pattern, 0.0, lambda, t);
            let lp_b = improved_event_log_prob(&neighbor, &pattern, 0.0, lambda, t);
            worst = worst.max((lp_a - lp_b).abs());
        }
    }
    println!("worst loss over 2^{k} neighbors x valid patterns: {worst:.4} (eps = {eps})");
    assert!(worst <= eps + 1e-6);

    println!("\n== Control group: PrivTree's exact Theorem 3.1 audit ==");
    let params = PrivTreeParams::from_epsilon(Epsilon::new(eps).unwrap(), 2).unwrap();
    let base_points = vec![0.05, 0.06, 0.07, 0.3, 0.62, 0.63, 0.9];
    let mut worst_pt = 0.0f64;
    for insert_at in [0.01, 0.06, 0.26, 0.49, 0.51, 0.75, 0.99] {
        let mut d0 = LineDomain::new(base_points.clone()).with_min_width(0.2);
        let mut with = base_points.clone();
        with.push(insert_at);
        let mut d1 = LineDomain::new(with).with_min_width(0.2);
        worst_pt = worst_pt.max(audit_privtree(&mut d0, &mut d1, &params, 3));
    }
    println!("worst loss over shapes x insertions: {worst_pt:.4} (eps = {eps})");
    assert!(worst_pt <= eps + 1e-9);

    println!("\npaper-shape check: binary and vanilla SVT losses grow linearly in k");
    println!("(not private at lambda = 2/eps); improved SVT and PrivTree stay <= eps.");
}
