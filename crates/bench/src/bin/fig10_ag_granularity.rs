//! Figure 10: impact of the granularity scale r on AG (road and Gowalla
//! only — AG is two-dimensional).

use privtree_baselines::ag_synopsis;
use privtree_bench::{avg_relative_error, make_dataset, workload_with_truth, Cli};
use privtree_datagen::spatial::{GOWALLA, ROAD};
use privtree_datagen::workload::QuerySize;
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::{derive_seed, seeded};
use privtree_eval::table::SeriesTable;
use privtree_eval::EPSILONS;
use privtree_spatial::geom::Rect;

const R_VALUES: [f64; 5] = [1.0 / 9.0, 1.0 / 3.0, 1.0, 3.0, 9.0];

fn main() {
    let cli = Cli::parse();
    let mut panel = b'a';
    for spec in [ROAD, GOWALLA] {
        let data = make_dataset(&spec, &cli);
        let domain = Rect::unit(2);
        for size in QuerySize::all() {
            let (queries, truth) = workload_with_truth(
                &data,
                &domain,
                size,
                cli.queries,
                derive_seed(cli.seed, size as u64),
            );
            let mut table = SeriesTable::new(
                &format!(
                    "Fig 10({}): {} - {} queries, AG granularity sweep",
                    panel as char,
                    spec.name,
                    size.name()
                ),
                "epsilon",
                &EPSILONS,
            )
            .with_percent();
            for (ri, &r) in R_VALUES.iter().enumerate() {
                let row: Vec<f64> = EPSILONS
                    .iter()
                    .map(|&eps| {
                        let e = Epsilon::new(eps).expect("positive");
                        let mut total = 0.0;
                        for rep in 0..cli.reps {
                            let mut rng = seeded(derive_seed(
                                cli.seed,
                                eps.to_bits() ^ (ri * 331 + rep) as u64,
                            ));
                            let syn = ag_synopsis(&data, &domain, e, r, &mut rng);
                            total += avg_relative_error(&syn, &queries, &truth, data.len());
                        }
                        total / cli.reps as f64
                    })
                    .collect();
                let label = match ri {
                    0 => "r=1/9",
                    1 => "r=1/3",
                    2 => "r=1",
                    3 => "r=3",
                    _ => "r=9",
                };
                table.push_row(label, row);
            }
            println!("\n{table}");
            panel += 1;
        }
    }
    println!("paper-shape check: r = 1 gives the best overall results for AG.");
}
