//! Table 2 + Figure 4: dataset characteristics and density visualizations.
//!
//! Prints the Table 2 rows for the synthetic stand-ins and renders each
//! 2-d dataset (and the pickup projection of the 4-d ones) as an ASCII
//! density map — the textual analogue of Figure 4. The skewness ordering
//! the paper calls out (road ≻ Gowalla, NYC ≻ Beijing) is printed as a
//! top-1%-cell mass statistic.

use privtree_bench::{make_dataset, Cli};
use privtree_datagen::spatial::{top_cell_mass, BEIJING, GOWALLA, NYC, ROAD};
use privtree_datagen::viz::ascii_density;

fn main() {
    let cli = Cli::parse();
    println!("== Table 2: characteristics of spatial datasets (synthetic stand-ins) ==");
    println!(
        "{:<10} {:>3} {:>12} {:>12}  Description",
        "Name", "d", "n (paper)", "n (here)"
    );
    for spec in [ROAD, GOWALLA, NYC, BEIJING] {
        println!(
            "{:<10} {:>3} {:>12} {:>12}  {}",
            spec.name,
            spec.dims,
            spec.default_n,
            cli.n_for(&spec),
            spec.description
        );
    }

    println!("\n== Figure 4: dataset visualizations (log-scaled ASCII density) ==");
    for spec in [ROAD, GOWALLA, NYC, BEIJING] {
        let data = make_dataset(&spec, &cli);
        let label = if spec.dims == 4 {
            " (pickup projection)"
        } else {
            ""
        };
        println!("\n--- {}{} ---", spec.name, label);
        println!("{}", ascii_density(&data, 0, 1, 72, 24));
        let bins = if spec.dims == 2 { 64 } else { 12 };
        println!(
            "top-1%-cell mass (skewness): {:.3}",
            top_cell_mass(&data, bins)
        );
    }

    println!("\npaper-shape check: road should be more skewed than Gowalla,");
    println!("and NYC more skewed than Beijing (asserted in datagen tests).");
}
