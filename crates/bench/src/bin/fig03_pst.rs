//! Figure 3: the example prediction suffix tree.
//!
//! Rebuilds the PST of Figure 3 from its four sequences (A = 0, B = 1)
//! and prints every node's predictor string and prediction histogram,
//! plus the Section 4.1 worked query example (ans(AB) = 3).

use privtree_markov::data::SequenceDataset;
use privtree_markov::private::exact_pst;
use privtree_markov::pst::SequenceModel;

fn main() {
    // s1 = $B&, s2 = $AB&, s3 = $AAB&, s4 = $AAAB&
    let data = SequenceDataset::new(
        &[vec![1], vec![0, 1], vec![0, 0, 1], vec![0, 0, 0, 1]],
        2,
        50,
    );
    let model = exact_pst(&data, 0.0, Some(4));
    let tree = model.tree();

    let sym_name = |s: u8| -> String {
        match s {
            0 => "A".into(),
            1 => "B".into(),
            2 => "&".into(),
            3 => "$".into(),
            other => format!("?{other}"),
        }
    };

    println!("== Figure 3: PST over {{$B&, $AB&, $AAB&, $AAAB&}} ==");
    // reconstruct each node's predictor by walking to the root
    for v in tree.ids() {
        let mut dom = String::new();
        for node in tree.path_from_root(v).iter().skip(1) {
            // edges prepend symbols, so the path spells dom(v) reversed
            let edge = tree.payload(*node).edge.expect("non-root has an edge");
            dom.insert_str(0, &sym_name(edge));
        }
        if dom.is_empty() {
            dom = "∅".into();
        }
        let h = model.hist(v);
        println!(
            "{:indent$}dom = {:<5} A: {} | B: {} | &: {}",
            "",
            dom,
            h[0],
            h[1],
            h[2],
            indent = 2 * tree.depth(v) as usize
        );
    }

    println!();
    println!("Section 4.1 worked example:");
    let ans = model.estimate_count(&[0, 1]);
    println!("  estimated occurrences of sq = AB: {ans} (paper: 3)");
    println!(
        "  estimated occurrences of A:  {} (paper hist(v1)[A] = 6)",
        model.estimate_count(&[0])
    );
    println!(
        "  estimated occurrences of BB: {} (never occurs)",
        model.estimate_count(&[1, 1])
    );
}
