//! Table 3 + Figure 6 (a)–(f): top-k frequent string mining precision.
//!
//! Methods: Truncate (non-private, truncated data), PrivTree (the
//! Section 4 PST), N-gram (Chen et al. \[6\], nmax = 5), and EM (iterative
//! exponential mechanism). Precision = |K(D) ∩ A(D)| / k against the
//! exact top-k of the untruncated dataset, k ∈ {50, 100, 200}.

use privtree_bench::Cli;
use privtree_datagen::sequence::{mooc_like, msnbc_like, SequenceData, MOOC, MSNBC};
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::{derive_seed, seeded};
use privtree_eval::metrics::precision_at_k;
use privtree_eval::table::SeriesTable;
use privtree_eval::EPSILONS;
use privtree_markov::data::SequenceDataset;
use privtree_markov::em::em_topk;
use privtree_markov::ngram::ngram_model;
use privtree_markov::private::private_pst;
use privtree_markov::topk::{exact_topk, model_topk};

const PATTERN_LEN: usize = 8;

fn main() {
    let cli = Cli::parse();
    // msnbc is ~1M sequences in the paper; scale it like everything else
    let datasets: Vec<(SequenceData, usize)> = vec![
        (
            mooc_like(
                ((MOOC.default_n as f64 * cli.scale) as usize).max(1000),
                cli.seed,
            ),
            MOOC.l_top,
        ),
        (
            msnbc_like(
                (((MSNBC.default_n / 4) as f64 * cli.scale) as usize).max(1000),
                cli.seed,
            ),
            MSNBC.l_top,
        ),
    ];

    println!("== Table 3: characteristics of sequence datasets (synthetic stand-ins) ==");
    println!(
        "{:<8} {:>4} {:>10} {:>10} {:>5} {:>12}",
        "Name", "|I|", "n", "mean len", "l_top", "#len>l_top"
    );
    for (raw, l_top) in &datasets {
        let over = raw
            .sequences
            .iter()
            .filter(|s| s.len() + 1 > *l_top)
            .count();
        println!(
            "{:<8} {:>4} {:>10} {:>10.2} {:>5} {:>12}",
            raw.name,
            raw.alphabet_size,
            raw.len(),
            raw.mean_length(),
            l_top,
            over
        );
    }

    let mut panel_names = ["a", "b", "c", "d", "e", "f"].iter();
    for (raw, l_top) in &datasets {
        // ground truth: exact top-k on the *untruncated* data
        let untruncated = SequenceDataset::new(&raw.sequences, raw.alphabet_size, 10_000);
        let truncated = SequenceDataset::new(&raw.sequences, raw.alphabet_size, *l_top);
        for k in [50usize, 100, 200] {
            let exact = exact_topk(&untruncated, k, PATTERN_LEN);
            let trunc_top = exact_topk(&truncated, k, PATTERN_LEN);
            let trunc_precision = precision_at_k(&exact, &trunc_top, k);

            let mut table = SeriesTable::new(
                &format!(
                    "Fig 6({}): {} - top{} (precision)",
                    panel_names.next().unwrap_or(&"?"),
                    raw.name,
                    k
                ),
                "epsilon",
                &EPSILONS,
            );
            table.push_row("Truncate", vec![trunc_precision; EPSILONS.len()]);

            let mut privtree_row = Vec::new();
            let mut ngram_row = Vec::new();
            let mut em_row = Vec::new();
            for &eps in &EPSILONS {
                let e = Epsilon::new(eps).expect("positive");
                let mut p_pt = 0.0;
                let mut p_ng = 0.0;
                let mut p_em = 0.0;
                for rep in 0..cli.reps {
                    let seed = derive_seed(cli.seed, eps.to_bits() ^ rep as u64);
                    let model = private_pst(&truncated, e, &mut seeded(seed)).expect("private pst");
                    p_pt += precision_at_k(&exact, &model_topk(&model, k, PATTERN_LEN), k);
                    let ng = ngram_model(&truncated, e, 5, &mut seeded(seed ^ 0xa5));
                    p_ng += precision_at_k(&exact, &model_topk(&ng, k, PATTERN_LEN), k);
                    let em = em_topk(&truncated, k, PATTERN_LEN, e, &mut seeded(seed ^ 0x5a));
                    p_em += precision_at_k(&exact, &em, k);
                }
                privtree_row.push(p_pt / cli.reps as f64);
                ngram_row.push(p_ng / cli.reps as f64);
                em_row.push(p_em / cli.reps as f64);
            }
            table.push_row("PrivTree", privtree_row);
            table.push_row("N-gram", ngram_row);
            table.push_row("EM", em_row);
            println!("\n{table}");
        }
    }
    println!("paper-shape check: PrivTree above N-gram and EM throughout; EM degrades");
    println!("as k grows; PrivTree can exceed Truncate at large eps on msnbc (the");
    println!("Markov model recovers truncated suffixes).");
}
