//! Figure 11: impact of the tree height h on Hierarchy (road and
//! Gowalla). The leaf resolution stays ≈ 64 bins per dimension while h
//! varies from 3 to 8, trading per-level noise against tree depth.

use privtree_baselines::hierarchy_synopsis;
use privtree_bench::{avg_relative_error, make_dataset, workload_with_truth, Cli};
use privtree_datagen::spatial::{GOWALLA, ROAD};
use privtree_datagen::workload::QuerySize;
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::{derive_seed, seeded};
use privtree_eval::table::SeriesTable;
use privtree_eval::EPSILONS;
use privtree_spatial::geom::Rect;

fn main() {
    let cli = Cli::parse();
    let mut panel = b'a';
    for spec in [ROAD, GOWALLA] {
        let data = make_dataset(&spec, &cli);
        let domain = Rect::unit(2);
        for size in QuerySize::all() {
            let (queries, truth) = workload_with_truth(
                &data,
                &domain,
                size,
                cli.queries,
                derive_seed(cli.seed, size as u64),
            );
            let mut table = SeriesTable::new(
                &format!(
                    "Fig 11({}): {} - {} queries, Hierarchy height sweep",
                    panel as char,
                    spec.name,
                    size.name()
                ),
                "epsilon",
                &EPSILONS,
            )
            .with_percent();
            for h in 3u32..=8 {
                let row: Vec<f64> = EPSILONS
                    .iter()
                    .map(|&eps| {
                        let e = Epsilon::new(eps).expect("positive");
                        let mut total = 0.0;
                        for rep in 0..cli.reps {
                            let mut rng = seeded(derive_seed(
                                cli.seed,
                                eps.to_bits() ^ (h as usize * 557 + rep) as u64,
                            ));
                            let syn = hierarchy_synopsis(&data, &domain, e, h, 64, &mut rng);
                            total += avg_relative_error(&syn, &queries, &truth, data.len());
                        }
                        total / cli.reps as f64
                    })
                    .collect();
                table.push_row(&format!("h={h}"), row);
            }
            println!("\n{table}");
            panel += 1;
        }
    }
    println!("paper-shape check: h = 3 (the [42] heuristic) is the best choice in");
    println!("most cells — taller trees dilute the per-level budget.");
}
