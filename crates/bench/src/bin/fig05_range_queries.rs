//! Figure 5 (a)–(l): average relative error of range-count queries.
//!
//! The headline experiment: for each of the four datasets, each query-size
//! class (small/medium/large), each method, and each privacy budget
//! ε ∈ {0.05, …, 1.6}, report the mean (over repetitions) of the average
//! relative error with the Δ = 0.1%·n smoothing of Section 6.1.
//!
//! Expected shape (paper): PrivTree lowest everywhere; DAWA the closest
//! competitor; AG > UG/Hierarchy on 2-d; the gaps widen on the skewed
//! road and NYC datasets and narrow on Gowalla and Beijing.

use privtree_bench::{make_dataset, method_error, workload_with_truth, Cli, SpatialMethod};
use privtree_datagen::spatial::{BEIJING, GOWALLA, NYC, ROAD};
use privtree_datagen::workload::QuerySize;
use privtree_dp::rng::derive_seed;
use privtree_eval::table::SeriesTable;
use privtree_eval::EPSILONS;
use privtree_spatial::geom::Rect;

fn main() {
    let cli = Cli::parse();
    println!(
        "Figure 5 reproduction: reps = {}, queries/set = {}, scale = {}",
        cli.reps, cli.queries, cli.scale
    );

    let mut panel = b'a';
    for spec in [ROAD, GOWALLA, NYC, BEIJING] {
        let data = make_dataset(&spec, &cli);
        let domain = Rect::unit(spec.dims);
        let roster = SpatialMethod::roster(spec.dims);
        for size in QuerySize::all() {
            let (queries, truth) = workload_with_truth(
                &data,
                &domain,
                size,
                cli.queries,
                derive_seed(cli.seed, size as u64),
            );
            let mut table = SeriesTable::new(
                &format!(
                    "Fig 5({}): {} - {} queries (avg relative error)",
                    panel as char,
                    spec.name,
                    size.name()
                ),
                "epsilon",
                &EPSILONS,
            )
            .with_percent();
            for method in &roster {
                let row: Vec<f64> = EPSILONS
                    .iter()
                    .map(|&eps| {
                        method_error(
                            *method,
                            &data,
                            &domain,
                            &queries,
                            &truth,
                            eps,
                            cli.reps,
                            derive_seed(cli.seed, eps.to_bits()),
                        )
                    })
                    .collect();
                table.push_row(method.name(), row);
            }
            println!("\n{table}");
            panel += 1;
        }
    }
    println!("paper-shape check: PrivTree should have the lowest error in (almost)");
    println!("every cell, with DAWA closest behind, and the margins largest on the");
    println!("skewed datasets (road, NYC).");
}
