//! Figure 2: the privacy-risk function ρ(x) and its upper bound ρ⊤(x).
//!
//! Prints both series on a grid of x around the threshold θ, reproducing
//! the log-scale plot: ρ = 1/λ for x ≤ θ, exponential decay past θ + 1,
//! with ρ⊤ hugging it from above.

use privtree_dp::rho::{rho, rho_upper};

fn main() {
    let lambda = 2.0;
    let theta = 10.0;
    println!("== Figure 2: rho(x) and rho_upper(x), lambda = {lambda}, theta = {theta} ==");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "x", "rho(x)", "rho_up(x)", "ratio"
    );
    let mut x = theta - 6.0;
    while x <= theta + 20.0 + 1e-9 {
        let r = rho(x, theta, lambda);
        let ru = rho_upper(x, theta, lambda);
        println!("{:>8.2} {:>14.6e} {:>14.6e} {:>10.4}", x, r, ru, r / ru);
        x += 1.0;
    }
    println!();
    println!("paper-shape check:");
    println!(
        "  rho(x) = 1/lambda = {:.4} for all x <= theta",
        1.0 / lambda
    );
    let r15 = rho(theta + 5.0, theta, lambda);
    let r16 = rho(theta + 6.0, theta, lambda);
    println!(
        "  decay factor per unit x beyond theta+1: {:.4} (exp(-1/lambda) = {:.4})",
        r16 / r15,
        (-1.0f64 / lambda).exp()
    );
    println!("  rho <= rho_upper everywhere: verified in crates/dp tests (Lemma 3.1)");
}
