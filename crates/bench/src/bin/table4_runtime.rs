//! Table 4: running time of PrivTree (seconds).
//!
//! Wall-clock time of the full PrivTree pipeline (tree + noisy counts +
//! freezing into the serving representation for spatial data; tree +
//! noisy histograms for sequences) per dataset and privacy budget.
//! Absolute numbers differ from the paper's C++ testbed; the reproduced
//! *shape* is that runtime grows with ε (more splits) and that road and
//! msnbc — the largest datasets — dominate.

use std::time::Instant;

use privtree_bench::{make_dataset, Cli};
use privtree_datagen::sequence::{mooc_like, msnbc_like, MOOC, MSNBC};
use privtree_datagen::spatial::{BEIJING, GOWALLA, NYC, ROAD};
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::{derive_seed, seeded};
use privtree_eval::table::SeriesTable;
use privtree_eval::EPSILONS;
use privtree_markov::data::SequenceDataset;
use privtree_markov::private::private_pst;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::synopsis::privtree_synopsis;

fn main() {
    let cli = Cli::parse();
    let mut table = SeriesTable::new(
        &format!(
            "Table 4: PrivTree running time in seconds (reps = {})",
            cli.reps
        ),
        "epsilon",
        &EPSILONS,
    );

    for spec in [ROAD, GOWALLA, NYC, BEIJING] {
        let data = make_dataset(&spec, &cli);
        let domain = Rect::unit(spec.dims);
        let row: Vec<f64> = EPSILONS
            .iter()
            .map(|&eps| {
                let e = Epsilon::new(eps).expect("positive");
                let start = Instant::now();
                for rep in 0..cli.reps {
                    let mut rng = seeded(derive_seed(cli.seed, eps.to_bits() ^ rep as u64));
                    let syn =
                        privtree_synopsis(&data, domain, SplitConfig::full(spec.dims), e, &mut rng)
                            .expect("synopsis");
                    // serving deployments hold the frozen form, so the
                    // timed pipeline includes the flattening pass
                    std::hint::black_box(syn.freeze().node_count());
                }
                start.elapsed().as_secs_f64() / cli.reps as f64
            })
            .collect();
        table.push_row(spec.name, row);
    }

    // sequence datasets
    let mooc = mooc_like(
        ((MOOC.default_n as f64 * cli.scale) as usize).max(1000),
        cli.seed,
    );
    let msnbc = msnbc_like(
        (((MSNBC.default_n / 4) as f64 * cli.scale) as usize).max(1000),
        cli.seed,
    );
    for (raw, l_top) in [(&mooc, MOOC.l_top), (&msnbc, MSNBC.l_top)] {
        let data = SequenceDataset::new(&raw.sequences, raw.alphabet_size, l_top);
        let row: Vec<f64> = EPSILONS
            .iter()
            .map(|&eps| {
                let e = Epsilon::new(eps).expect("positive");
                let start = Instant::now();
                for rep in 0..cli.reps {
                    let mut rng = seeded(derive_seed(cli.seed, eps.to_bits() ^ (99 + rep as u64)));
                    let model = private_pst(&data, e, &mut rng).expect("pst");
                    std::hint::black_box(model.node_count());
                }
                start.elapsed().as_secs_f64() / cli.reps as f64
            })
            .collect();
        table.push_row(raw.name, row);
    }

    println!("{table}");
    println!("paper-shape check: time increases with epsilon (the bias term");
    println!("depth(v)*delta shrinks, so more nodes clear the threshold), and the");
    println!("largest datasets (road, msnbc) take the longest.");
}
