//! Ablation: the split threshold θ.
//!
//! Section 3.4 argues that, because PrivTree subtracts the depth bias
//! `depth(v)·δ` before the split decision, θ = 0 already guarantees leaves
//! with healthy counts — "we use θ = 0 in our implementation … and we
//! observe that it leads to reasonably good results". This ablation sweeps
//! θ and measures both the query error and the tree size it buys.

use privtree_bench::{avg_relative_error, make_dataset, workload_with_truth, Cli};
use privtree_core::params::PrivTreeParams;
use privtree_datagen::spatial::{GOWALLA, ROAD};
use privtree_datagen::workload::QuerySize;
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::{derive_seed, seeded};
use privtree_eval::table::SeriesTable;
use privtree_eval::EPSILONS;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::synopsis::privtree_synopsis_with_params;

const THETAS: [f64; 4] = [0.0, 25.0, 100.0, 400.0];

fn main() {
    let cli = Cli::parse();
    for spec in [ROAD, GOWALLA] {
        let data = make_dataset(&spec, &cli);
        let domain = Rect::unit(spec.dims);
        let (queries, truth) = workload_with_truth(
            &data,
            &domain,
            QuerySize::Medium,
            cli.queries,
            derive_seed(cli.seed, 1),
        );
        let mut err_table = SeriesTable::new(
            &format!(
                "theta ablation: {} - medium queries (avg relative error)",
                spec.name
            ),
            "epsilon",
            &EPSILONS,
        )
        .with_percent();
        let mut size_table = SeriesTable::new(
            &format!("theta ablation: {} - tree size (nodes)", spec.name),
            "epsilon",
            &EPSILONS,
        );
        for &theta in &THETAS {
            let mut err_row = Vec::new();
            let mut size_row = Vec::new();
            for &eps in &EPSILONS {
                let e = Epsilon::new(eps).expect("positive");
                let (e_tree, e_counts) = e.split_two(0.5).expect("split");
                let mut err = 0.0;
                let mut size = 0.0;
                for rep in 0..cli.reps {
                    let mut rng = seeded(derive_seed(
                        cli.seed,
                        eps.to_bits() ^ (theta.to_bits().rotate_left(7) ^ rep as u64),
                    ));
                    let params = PrivTreeParams::from_epsilon(e_tree, 1 << spec.dims)
                        .expect("params")
                        .with_theta(theta);
                    let syn = privtree_synopsis_with_params(
                        &data,
                        domain,
                        SplitConfig::full(spec.dims),
                        &params,
                        e_counts,
                        &mut rng,
                    )
                    .expect("synopsis");
                    err += avg_relative_error(&syn, &queries, &truth, data.len());
                    size += syn.node_count() as f64;
                }
                err_row.push(err / cli.reps as f64);
                size_row.push(size / cli.reps as f64);
            }
            err_table.push_row(&format!("theta={theta}"), err_row);
            size_table.push_row(&format!("theta={theta}"), size_row);
        }
        println!("\n{err_table}");
        println!("{size_table}");
    }
    println!("design-choice check: theta = 0 should be competitive everywhere; large");
    println!("theta prunes the tree (smaller node counts) and coarsens dense regions.");
}
