//! Figure 12: impact of the tree height h (= nmax) on the N-gram
//! baseline's top-k precision, h ∈ {3, …, 7}.

use privtree_bench::Cli;
use privtree_datagen::sequence::{mooc_like, msnbc_like, MOOC, MSNBC};
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::{derive_seed, seeded};
use privtree_eval::metrics::precision_at_k;
use privtree_eval::table::SeriesTable;
use privtree_eval::EPSILONS;
use privtree_markov::data::SequenceDataset;
use privtree_markov::ngram::ngram_model;
use privtree_markov::topk::{exact_topk, model_topk};

const PATTERN_LEN: usize = 8;

fn main() {
    let cli = Cli::parse();
    let datasets = vec![
        (
            mooc_like(
                ((MOOC.default_n as f64 * cli.scale) as usize).max(1000),
                cli.seed,
            ),
            MOOC.l_top,
        ),
        (
            msnbc_like(
                (((MSNBC.default_n / 4) as f64 * cli.scale) as usize).max(1000),
                cli.seed,
            ),
            MSNBC.l_top,
        ),
    ];

    let mut panel = b'a';
    for (raw, l_top) in &datasets {
        let untruncated = SequenceDataset::new(&raw.sequences, raw.alphabet_size, 10_000);
        let truncated = SequenceDataset::new(&raw.sequences, raw.alphabet_size, *l_top);
        for k in [50usize, 100, 200] {
            let exact = exact_topk(&untruncated, k, PATTERN_LEN);
            let mut table = SeriesTable::new(
                &format!(
                    "Fig 12({}): {} - top{} N-gram height sweep (precision)",
                    panel as char, raw.name, k
                ),
                "epsilon",
                &EPSILONS,
            );
            for h in 3usize..=7 {
                let row: Vec<f64> = EPSILONS
                    .iter()
                    .map(|&eps| {
                        let e = Epsilon::new(eps).expect("positive");
                        let mut total = 0.0;
                        for rep in 0..cli.reps {
                            let seed =
                                derive_seed(cli.seed, eps.to_bits() ^ (h * 713 + rep) as u64);
                            let ng = ngram_model(&truncated, e, h, &mut seeded(seed));
                            total += precision_at_k(&exact, &model_topk(&ng, k, PATTERN_LEN), k);
                        }
                        total / cli.reps as f64
                    })
                    .collect();
                table.push_row(&format!("h={h}"), row);
            }
            println!("\n{table}");
            panel += 1;
        }
    }
    println!("paper-shape check: h = 5 (the [6] recommendation) gives one of the best");
    println!("overall results, with h = 4 a close competitor.");
}
