//! Related-work reproduction: the k-d tree method of Xiao et al. \[51\].
//!
//! Section 7: "This method, however, is shown to be inferior to the UG
//! and AG methods tested in our experiments, in terms of data utility
//! \[41\]." This binary makes that claim reproducible by running KdTree
//! beside UG, AG, and PrivTree on the 2-d datasets.

use privtree_baselines::{ag_synopsis, kd_synopsis, ug_synopsis};
use privtree_bench::{avg_relative_error, make_dataset, workload_with_truth, Cli};
use privtree_datagen::spatial::{GOWALLA, ROAD};
use privtree_datagen::workload::QuerySize;
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::{derive_seed, seeded};
use privtree_eval::table::SeriesTable;
use privtree_eval::EPSILONS;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::synopsis::privtree_synopsis;

fn main() {
    let cli = Cli::parse();
    for spec in [ROAD, GOWALLA] {
        let data = make_dataset(&spec, &cli);
        let domain = Rect::unit(2);
        for size in QuerySize::all() {
            let (queries, truth) = workload_with_truth(
                &data,
                &domain,
                size,
                cli.queries,
                derive_seed(cli.seed, size as u64),
            );
            let mut table = SeriesTable::new(
                &format!(
                    "related work: {} - {} queries (avg relative error)",
                    spec.name,
                    size.name()
                ),
                "epsilon",
                &EPSILONS,
            )
            .with_percent();
            let mut rows: Vec<(&str, Vec<f64>)> = vec![
                ("PrivTree", Vec::new()),
                ("UG", Vec::new()),
                ("AG", Vec::new()),
                ("KdTree", Vec::new()),
            ];
            for &eps in &EPSILONS {
                let e = Epsilon::new(eps).expect("positive");
                let mut errs = [0.0f64; 4];
                for rep in 0..cli.reps {
                    let seed = derive_seed(cli.seed, eps.to_bits() ^ rep as u64);
                    let pt = privtree_synopsis(
                        &data,
                        domain,
                        SplitConfig::full(2),
                        e,
                        &mut seeded(seed),
                    )
                    .expect("privtree");
                    errs[0] += avg_relative_error(&pt, &queries, &truth, data.len());
                    let ug = ug_synopsis(&data, &domain, e, 1.0, &mut seeded(seed ^ 1));
                    errs[1] += avg_relative_error(&ug, &queries, &truth, data.len());
                    let ag = ag_synopsis(&data, &domain, e, 1.0, &mut seeded(seed ^ 2));
                    errs[2] += avg_relative_error(&ag, &queries, &truth, data.len());
                    // [41] used height ≈ 10 for k-d trees on 2-d data
                    let kd = kd_synopsis(&data, &domain, e, 10, &mut seeded(seed ^ 3));
                    errs[3] += avg_relative_error(&kd, &queries, &truth, data.len());
                }
                for (row, err) in rows.iter_mut().zip(errs) {
                    row.1.push(err / cli.reps as f64);
                }
            }
            for (name, row) in rows {
                table.push_row(name, row);
            }
            println!("\n{table}");
        }
    }
    println!("paper-shape check: KdTree behind UG and AG ([41], as cited in Section 7),");
    println!("PrivTree ahead of all three.");
}
