//! Ablation: the decay ratio γ = δ/λ.
//!
//! Theorem 3.1 allows any γ > 0 with `λ = (2e^γ − 1)/(e^γ − 1)·(1/ε)`;
//! Section 3.4 picks `γ = ln β` so that a floor-level node splits with
//! probability exactly 1/(2β), which yields the Lemma 3.2 size bound.
//! This ablation sweeps γ around ln β and records error and tree size —
//! the "balancing act between the amount of bias and the amount of
//! noise".

use privtree_bench::{avg_relative_error, make_dataset, workload_with_truth, Cli};
use privtree_core::params::PrivTreeParams;
use privtree_datagen::spatial::GOWALLA;
use privtree_datagen::workload::QuerySize;
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::{derive_seed, seeded};
use privtree_eval::table::SeriesTable;
use privtree_eval::EPSILONS;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::synopsis::privtree_synopsis_with_params;

fn main() {
    let cli = Cli::parse();
    let spec = GOWALLA;
    let data = make_dataset(&spec, &cli);
    let domain = Rect::unit(spec.dims);
    let beta = 1usize << spec.dims;
    let ln_beta = (beta as f64).ln();
    // γ as multiples of ln β
    let gammas = [
        0.25 * ln_beta,
        0.5 * ln_beta,
        ln_beta,
        2.0 * ln_beta,
        4.0 * ln_beta,
    ];

    let (queries, truth) = workload_with_truth(
        &data,
        &domain,
        QuerySize::Medium,
        cli.queries,
        derive_seed(cli.seed, 2),
    );
    let mut err_table = SeriesTable::new(
        &format!(
            "gamma ablation: {} - medium queries (avg relative error)",
            spec.name
        ),
        "epsilon",
        &EPSILONS,
    )
    .with_percent();
    let mut size_table = SeriesTable::new(
        &format!("gamma ablation: {} - tree size (nodes)", spec.name),
        "epsilon",
        &EPSILONS,
    );
    for (gi, &gamma) in gammas.iter().enumerate() {
        let mut err_row = Vec::new();
        let mut size_row = Vec::new();
        for &eps in &EPSILONS {
            let e = Epsilon::new(eps).expect("positive");
            let (e_tree, e_counts) = e.split_two(0.5).expect("split");
            let mut err = 0.0;
            let mut size = 0.0;
            for rep in 0..cli.reps {
                let mut rng = seeded(derive_seed(
                    cli.seed,
                    eps.to_bits() ^ (gi * 39 + rep) as u64,
                ));
                let params =
                    PrivTreeParams::from_epsilon_with_gamma(e_tree, gamma).expect("params");
                let syn = privtree_synopsis_with_params(
                    &data,
                    domain,
                    SplitConfig::full(spec.dims),
                    &params,
                    e_counts,
                    &mut rng,
                )
                .expect("synopsis");
                err += avg_relative_error(&syn, &queries, &truth, data.len());
                size += syn.node_count() as f64;
            }
            err_row.push(err / cli.reps as f64);
            size_row.push(size / cli.reps as f64);
        }
        let label = format!("gamma={:.2} ({}ln b)", gamma, gamma / ln_beta);
        err_table.push_row(&label, err_row);
        size_table.push_row(&label, size_row);
    }
    println!("\n{err_table}");
    println!("{size_table}");
    println!("design-choice check: gamma = ln beta (the Corollary 1 setting) should sit");
    println!("near the error minimum; much smaller gamma inflates noise AND tree size,");
    println!("much larger gamma over-biases and under-splits.");
}
