//! Figure 8: impact of the fanout β on PrivTree.
//!
//! Variants: β = 2^d (full bisection), β = 2^{d/2}, and β = 2
//! (round-robin partial bisection). Appendix C's finding: smaller β
//! slightly increases error via the larger depth bias, but β = 2^{d/2}
//! occasionally wins on 4-d data where β = 2^d over-fragments.

use privtree_bench::{avg_relative_error, make_dataset, workload_with_truth, Cli};
use privtree_datagen::spatial::{BEIJING, GOWALLA, NYC, ROAD};
use privtree_datagen::workload::QuerySize;
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::{derive_seed, seeded};
use privtree_eval::table::SeriesTable;
use privtree_eval::EPSILONS;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::synopsis::privtree_synopsis;

fn main() {
    let cli = Cli::parse();
    let mut panel = b'a';
    for spec in [ROAD, GOWALLA, NYC, BEIJING] {
        let data = make_dataset(&spec, &cli);
        let domain = Rect::unit(spec.dims);
        // arity_log2 candidates: d, d/2 (if distinct), 1
        let mut arities = vec![spec.dims];
        if spec.dims / 2 >= 1 && spec.dims / 2 != spec.dims {
            arities.push(spec.dims / 2);
        }
        if !arities.contains(&1) {
            arities.push(1);
        }
        for size in QuerySize::all() {
            let (queries, truth) = workload_with_truth(
                &data,
                &domain,
                size,
                cli.queries,
                derive_seed(cli.seed, size as u64),
            );
            let mut table = SeriesTable::new(
                &format!(
                    "Fig 8({}): {} - {} queries, PrivTree fanout ablation",
                    panel as char,
                    spec.name,
                    size.name()
                ),
                "epsilon",
                &EPSILONS,
            )
            .with_percent();
            for &a in &arities {
                let row: Vec<f64> = EPSILONS
                    .iter()
                    .map(|&eps| {
                        let e = Epsilon::new(eps).expect("positive");
                        let mut total = 0.0;
                        for rep in 0..cli.reps {
                            let mut rng = seeded(derive_seed(
                                cli.seed,
                                eps.to_bits() ^ (a * 131 + rep) as u64,
                            ));
                            let syn = privtree_synopsis(
                                &data,
                                domain,
                                SplitConfig::partial(a),
                                e,
                                &mut rng,
                            )
                            .expect("synopsis");
                            total += avg_relative_error(&syn, &queries, &truth, data.len());
                        }
                        total / cli.reps as f64
                    })
                    .collect();
                table.push_row(&format!("PrivTree (beta=2^{a})"), row);
            }
            println!("\n{table}");
            panel += 1;
        }
    }
    println!("paper-shape check: beta = 2^d best overall; smaller beta slightly worse");
    println!("(deeper trees pay a larger bias), with occasional wins for beta = 2^(d/2)");
    println!("on the 4-d datasets.");
}
