//! Figure 7 (a)–(b): total variation distance of synthetic
//! sequence-length distributions.
//!
//! Generate a synthetic dataset from each model (PrivTree PST, N-gram)
//! and compare its length distribution with the original data's; the
//! Truncate baseline is the truncated dataset itself.

use privtree_bench::Cli;
use privtree_datagen::sequence::{mooc_like, msnbc_like, SequenceData, MOOC, MSNBC};
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::{derive_seed, seeded};
use privtree_eval::metrics::{length_histogram, total_variation_distance};
use privtree_eval::table::SeriesTable;
use privtree_eval::EPSILONS;
use privtree_markov::data::SequenceDataset;
use privtree_markov::ngram::ngram_model;
use privtree_markov::private::private_pst;
use privtree_markov::pst::SequenceModel;

fn main() {
    let cli = Cli::parse();
    let datasets: Vec<(SequenceData, usize)> = vec![
        (
            mooc_like(
                ((MOOC.default_n as f64 * cli.scale) as usize).max(1000),
                cli.seed,
            ),
            MOOC.l_top,
        ),
        (
            msnbc_like(
                (((MSNBC.default_n / 4) as f64 * cli.scale) as usize).max(1000),
                cli.seed,
            ),
            MSNBC.l_top,
        ),
    ];

    for (i, (raw, l_top)) in datasets.iter().enumerate() {
        let max_len = l_top + 10;
        let true_hist = length_histogram(raw.sequences.iter().map(Vec::len), max_len);
        let truncated = SequenceDataset::new(&raw.sequences, raw.alphabet_size, *l_top);
        let trunc_hist = truncated.raw_length_histogram(max_len);
        let trunc_tvd = total_variation_distance(&true_hist, &trunc_hist);
        // synthetic sample size: match the dataset
        let sample_n = raw.len().min(30_000);

        let mut table = SeriesTable::new(
            &format!(
                "Fig 7({}): {} - sequence length TVD",
                (b'a' + i as u8) as char,
                raw.name
            ),
            "epsilon",
            &EPSILONS,
        );
        table.push_row("Truncate", vec![trunc_tvd; EPSILONS.len()]);

        let mut pt_row = Vec::new();
        let mut ng_row = Vec::new();
        for &eps in &EPSILONS {
            let e = Epsilon::new(eps).expect("positive");
            let mut tvd_pt = 0.0;
            let mut tvd_ng = 0.0;
            for rep in 0..cli.reps {
                let seed = derive_seed(cli.seed, eps.to_bits() ^ (777 + rep as u64));
                // PrivTree PST
                let model = private_pst(&truncated, e, &mut seeded(seed)).expect("pst");
                let mut rng = seeded(seed ^ 0x11);
                let lens = (0..sample_n).map(|_| model.sample_sequence(&mut rng, *l_top).len());
                let hist = length_histogram(lens, max_len);
                tvd_pt += total_variation_distance(&true_hist, &hist);
                // N-gram
                let ng = ngram_model(&truncated, e, 5, &mut seeded(seed ^ 0x22));
                let mut rng = seeded(seed ^ 0x33);
                let lens = (0..sample_n).map(|_| ng.sample_sequence(&mut rng, *l_top).len());
                let hist = length_histogram(lens, max_len);
                tvd_ng += total_variation_distance(&true_hist, &hist);
            }
            pt_row.push(tvd_pt / cli.reps as f64);
            ng_row.push(tvd_ng / cli.reps as f64);
        }
        table.push_row("PrivTree", pt_row);
        table.push_row("N-gram", ng_row);
        println!("\n{table}");
    }
    println!("paper-shape check: PrivTree's TVD approaches Truncate's for eps >= 0.2;");
    println!("N-gram stays well above both.");
}
