//! Shared harness for the per-figure benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index). They share:
//!
//! * [`Cli`] — a tiny flag parser (`--reps`, `--queries`, `--seed`,
//!   `--quick`, `--full`, `--scale`);
//! * [`SpatialMethod`] — the method registry for Figure 5-style sweeps;
//! * dataset construction at paper or scaled cardinalities;
//! * exact ground-truth evaluation and average-relative-error scoring.

use privtree_baselines::{
    ag_synopsis, dawa_synopsis, hierarchy_synopsis, privelet_synopsis, ug_synopsis,
};
use privtree_datagen::spatial::{self, SpatialSpec};
use privtree_datagen::workload::QuerySize;
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::derive_seed;
use privtree_eval::error::{average_relative_error, smoothing_factor};
use privtree_eval::runner::repeat_mean;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::index::GridIndex;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_spatial::synopsis::privtree_synopsis;

/// Command-line options shared by every benchmark binary.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Repetitions per configuration (paper: 100; default here: 3).
    pub reps: usize,
    /// Queries per workload (paper: 10,000; default here: 1,000).
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
    /// Dataset cardinality scale relative to Table 2/3 (default 1.0).
    pub scale: f64,
}

impl Cli {
    /// Parse `--reps N --queries N --seed N --scale F --quick --full`
    /// from `std::env::args`.
    pub fn parse() -> Self {
        Self::parse_from(&std::env::args().collect::<Vec<String>>())
    }

    /// Parse from an explicit argument vector (element 0 is skipped as
    /// the program name).
    pub fn parse_from(args: &[String]) -> Self {
        let mut cli = Cli {
            reps: 3,
            queries: 1000,
            seed: 20160115, // the paper's arXiv date
            scale: 1.0,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--reps" => {
                    cli.reps = args[i + 1].parse().expect("--reps N");
                    i += 1;
                }
                "--queries" => {
                    cli.queries = args[i + 1].parse().expect("--queries N");
                    i += 1;
                }
                "--seed" => {
                    cli.seed = args[i + 1].parse().expect("--seed N");
                    i += 1;
                }
                "--scale" => {
                    cli.scale = args[i + 1].parse().expect("--scale F");
                    i += 1;
                }
                "--quick" => {
                    cli.reps = 1;
                    cli.queries = 200;
                    cli.scale = 0.05;
                }
                "--full" => {
                    cli.reps = 20;
                    cli.queries = 10_000;
                    cli.scale = 1.0;
                }
                other => {
                    eprintln!("warning: unknown flag {other}");
                }
            }
            i += 1;
        }
        cli
    }

    /// Scaled cardinality for a dataset spec.
    pub fn n_for(&self, spec: &SpatialSpec) -> usize {
        ((spec.default_n as f64 * self.scale) as usize).max(1000)
    }
}

/// The Figure 5 method registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialMethod {
    /// PrivTree (this paper), Section 3.4 pipeline.
    PrivTree,
    /// Uniform Grid.
    Ug,
    /// Adaptive Grid (2-d only).
    Ag,
    /// Hierarchical decomposition with mean consistency.
    Hierarchy,
    /// DAWA-style two-stage mechanism.
    Dawa,
    /// Privelet*-style wavelet mechanism.
    Privelet,
}

impl SpatialMethod {
    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            SpatialMethod::PrivTree => "PrivTree",
            SpatialMethod::Ug => "UG",
            SpatialMethod::Ag => "AG",
            SpatialMethod::Hierarchy => "Hierarchy",
            SpatialMethod::Dawa => "DAWA",
            SpatialMethod::Privelet => "Privelet*",
        }
    }

    /// The methods the paper runs on a dataset of dimensionality `d`
    /// (AG and Hierarchy are omitted on 4-d data, Section 6.1).
    pub fn roster(dims: usize) -> Vec<SpatialMethod> {
        if dims == 2 {
            vec![
                SpatialMethod::PrivTree,
                SpatialMethod::Ug,
                SpatialMethod::Ag,
                SpatialMethod::Hierarchy,
                SpatialMethod::Dawa,
                SpatialMethod::Privelet,
            ]
        } else {
            vec![
                SpatialMethod::PrivTree,
                SpatialMethod::Ug,
                SpatialMethod::Dawa,
                SpatialMethod::Privelet,
            ]
        }
    }

    /// Build a synopsis of this method on `data` at budget `eps`.
    ///
    /// PrivTree releases are frozen into the structure-of-arrays
    /// [`privtree_spatial::FrozenSynopsis`] before serving, matching how
    /// a query-heavy deployment would hold them.
    pub fn build(
        self,
        data: &PointSet,
        domain: &Rect,
        eps: f64,
        rng: &mut privtree_dp::rng::SeededRng,
    ) -> Box<dyn RangeCountSynopsis> {
        let eps = Epsilon::new(eps).expect("positive epsilon");
        let d = data.dims();
        match self {
            SpatialMethod::PrivTree => Box::new(
                privtree_synopsis(data, *domain, SplitConfig::full(d), eps, rng)
                    .expect("privtree synopsis")
                    .freeze(),
            ),
            SpatialMethod::Ug => Box::new(ug_synopsis(data, domain, eps, 1.0, rng)),
            SpatialMethod::Ag => Box::new(ag_synopsis(data, domain, eps, 1.0, rng)),
            SpatialMethod::Hierarchy => {
                // [42]'s 2-d recommendation: h = 3, 64×64 leaves; for 4-d
                // use a small leaf grid (the full heuristic is infeasible,
                // as Section 6.1 notes)
                let leaf = if d == 2 { 64 } else { 9 };
                Box::new(hierarchy_synopsis(data, domain, eps, 3, leaf, rng))
            }
            SpatialMethod::Dawa => Box::new(dawa_synopsis(data, domain, eps, 20, rng)),
            SpatialMethod::Privelet => Box::new(privelet_synopsis(data, domain, eps, 20, rng)),
        }
    }
}

/// Generate a spatial dataset at the CLI's scale.
pub fn make_dataset(spec: &SpatialSpec, cli: &Cli) -> PointSet {
    spatial::generate(spec, cli.n_for(spec), cli.seed)
}

/// Exact answers for a workload (via the bucket-grid index).
pub fn exact_answers(data: &PointSet, domain: &Rect, queries: &[RangeQuery]) -> Vec<f64> {
    let index = GridIndex::build(data, domain);
    queries
        .iter()
        .map(|q| index.count(data, &q.rect) as f64)
        .collect()
}

/// Average relative error of a synopsis on a pre-evaluated workload,
/// answered through the batched entry point.
pub fn avg_relative_error(
    syn: &dyn RangeCountSynopsis,
    queries: &[RangeQuery],
    truth: &[f64],
    cardinality: usize,
) -> f64 {
    let estimates = syn.answer_batch(queries);
    average_relative_error(&estimates, truth, smoothing_factor(cardinality))
}

/// One full Figure 5 cell: mean (over reps) of the average relative error
/// of `method` on `data` for `queries`, at privacy budget `eps`.
#[allow(clippy::too_many_arguments)]
pub fn method_error(
    method: SpatialMethod,
    data: &PointSet,
    domain: &Rect,
    queries: &[RangeQuery],
    truth: &[f64],
    eps: f64,
    reps: usize,
    seed: u64,
) -> f64 {
    repeat_mean(reps, derive_seed(seed, 0x5eed), |rng| {
        let syn = method.build(data, domain, eps, rng);
        avg_relative_error(syn.as_ref(), queries, truth, data.len())
    })
}

/// The standard query workload for a dataset: `count` queries in each
/// size class, with exact answers.
pub fn workload_with_truth(
    data: &PointSet,
    domain: &Rect,
    size: QuerySize,
    count: usize,
    seed: u64,
) -> (Vec<RangeQuery>, Vec<f64>) {
    let queries = privtree_datagen::workload::range_queries(domain, size, count, seed);
    let truth = exact_answers(data, domain, &queries);
    (queries, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_datagen::spatial::GOWALLA;

    fn tiny_cli() -> Cli {
        Cli {
            reps: 1,
            queries: 50,
            seed: 7,
            scale: 0.01,
        }
    }

    fn args(list: &[&str]) -> Vec<String> {
        std::iter::once("prog".to_string())
            .chain(list.iter().map(|s| s.to_string()))
            .collect()
    }

    #[test]
    fn cli_defaults() {
        let cli = Cli::parse_from(&args(&[]));
        assert_eq!(cli.reps, 3);
        assert_eq!(cli.queries, 1000);
        assert_eq!(cli.scale, 1.0);
    }

    #[test]
    fn cli_flags_override() {
        let cli = Cli::parse_from(&args(&["--reps", "7", "--queries", "42", "--seed", "5"]));
        assert_eq!(cli.reps, 7);
        assert_eq!(cli.queries, 42);
        assert_eq!(cli.seed, 5);
    }

    #[test]
    fn cli_quick_and_full_presets() {
        let quick = Cli::parse_from(&args(&["--quick"]));
        assert_eq!(quick.reps, 1);
        assert!(quick.scale < 0.1);
        let full = Cli::parse_from(&args(&["--full"]));
        assert_eq!(full.reps, 20);
        assert_eq!(full.queries, 10_000);
    }

    #[test]
    fn cli_scaled_cardinality_floor() {
        let cli = Cli::parse_from(&args(&["--scale", "0.000001"]));
        assert_eq!(cli.n_for(&GOWALLA), 1000, "scaled n is floored");
    }

    #[test]
    fn roster_respects_dimensionality() {
        assert_eq!(SpatialMethod::roster(2).len(), 6);
        let four = SpatialMethod::roster(4);
        assert!(!four.contains(&SpatialMethod::Ag));
        assert!(!four.contains(&SpatialMethod::Hierarchy));
    }

    #[test]
    fn every_method_builds_and_answers() {
        let cli = tiny_cli();
        let data = make_dataset(&GOWALLA, &cli);
        let domain = Rect::unit(2);
        let (queries, truth) = workload_with_truth(&data, &domain, QuerySize::Large, 20, cli.seed);
        for method in SpatialMethod::roster(2) {
            let err = method_error(method, &data, &domain, &queries, &truth, 1.0, 1, 3);
            assert!(
                err.is_finite() && err >= 0.0,
                "{}: err = {err}",
                method.name()
            );
        }
    }

    #[test]
    fn privtree_error_decreases_with_epsilon() {
        let cli = Cli {
            scale: 0.05,
            ..tiny_cli()
        };
        let data = make_dataset(&GOWALLA, &cli);
        let domain = Rect::unit(2);
        let (queries, truth) = workload_with_truth(&data, &domain, QuerySize::Large, 40, cli.seed);
        let hi = method_error(
            SpatialMethod::PrivTree,
            &data,
            &domain,
            &queries,
            &truth,
            0.05,
            3,
            11,
        );
        let lo = method_error(
            SpatialMethod::PrivTree,
            &data,
            &domain,
            &queries,
            &truth,
            1.6,
            3,
            11,
        );
        assert!(
            lo < hi,
            "error at ε=1.6 ({lo}) should be below ε=0.05 ({hi})"
        );
    }
}
