//! Criterion microbenches: sequence-model construction and use.

use criterion::{criterion_group, criterion_main, Criterion};
use privtree_datagen::sequence::mooc_like;
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_markov::data::SequenceDataset;
use privtree_markov::ngram::ngram_model;
use privtree_markov::private::private_pst;
use privtree_markov::pst::SequenceModel;
use privtree_markov::topk::{exact_topk, model_topk};
use std::hint::black_box;

fn bench_sequence(_c: &mut Criterion) {
    let mut c = Criterion::default().sample_size(10);
    let c = &mut c;
    let raw = mooc_like(20_000, 1);
    let data = SequenceDataset::new(&raw.sequences, raw.alphabet_size, 50);
    let eps = Epsilon::new(1.0).unwrap();

    c.bench_function("private_pst_build_mooc_20k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(
                private_pst(&data, eps, &mut seeded(seed))
                    .unwrap()
                    .node_count(),
            )
        })
    });

    c.bench_function("ngram_build_mooc_20k_h5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(ngram_model(&data, eps, 5, &mut seeded(seed)).released_grams())
        })
    });

    let model = private_pst(&data, eps, &mut seeded(42)).unwrap();
    c.bench_function("pst_estimate_count_len6", |b| {
        b.iter(|| black_box(model.estimate_count(&[0, 1, 0, 2, 1, 0])))
    });

    c.bench_function("pst_sample_sequence", |b| {
        let mut rng = seeded(7);
        b.iter(|| black_box(model.sample_sequence(&mut rng, 50).len()))
    });

    c.bench_function("model_topk_50", |b| {
        b.iter(|| black_box(model_topk(&model, 50, 8).len()))
    });

    c.bench_function("exact_topk_50_mooc_20k", |b| {
        b.iter(|| black_box(exact_topk(&data, 50, 8).len()))
    });
}

criterion_group!(benches, bench_sequence);
criterion_main!(benches);
