//! Criterion microbenches: synopsis construction costs, including the
//! level-synchronous frontier builder against the node-at-a-time
//! reference loop.

use criterion::{criterion_group, criterion_main, Criterion};
use privtree_core::params::PrivTreeParams;
use privtree_core::privtree::{build_privtree, build_privtree_sequential};
use privtree_datagen::spatial::{gowalla_like, nyc_like};
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_spatial::geom::Rect;
use privtree_spatial::index::GridIndex;
use privtree_spatial::quadtree::{QuadDomain, SplitConfig};
use privtree_spatial::synopsis::{privtree_synopsis, simple_tree_synopsis};
use std::hint::black_box;

fn bench_build(_c: &mut Criterion) {
    let mut c = Criterion::default().sample_size(10);
    let c = &mut c;
    let data = gowalla_like(100_000, 1);
    let domain = Rect::unit(2);
    let eps = Epsilon::new(1.0).unwrap();

    c.bench_function("privtree_build_gowalla_100k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let syn =
                privtree_synopsis(&data, domain, SplitConfig::full(2), eps, &mut seeded(seed))
                    .unwrap();
            black_box(syn.node_count())
        })
    });

    c.bench_function("simple_tree_build_gowalla_100k_h6", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let syn = simple_tree_synopsis(
                &data,
                domain,
                SplitConfig::full(2),
                eps,
                6,
                12.0,
                &mut seeded(seed),
            )
            .unwrap();
            black_box(syn.node_count())
        })
    });

    let nyc = nyc_like(98_013, 2);
    c.bench_function("privtree_build_nyc_4d", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let syn = privtree_synopsis(
                &nyc,
                Rect::unit(4),
                SplitConfig::full(4),
                eps,
                &mut seeded(seed),
            )
            .unwrap();
            black_box(syn.node_count())
        })
    });

    c.bench_function("grid_index_build_100k", |b| {
        b.iter(|| black_box(GridIndex::build(&data, &domain).total()))
    });
}

/// Frontier (level-synchronous, batch split) versus sequential
/// (node-at-a-time) tree construction over the same quadtree domain; the
/// two produce bit-identical trees, so this isolates the builder.
fn bench_frontier_vs_sequential(c: &mut Criterion) {
    let data = gowalla_like(100_000, 1);
    let params = PrivTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 4).unwrap();

    c.bench_function("privtree_frontier_build_gowalla_100k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut dom = QuadDomain::quadtree(&data, Rect::unit(2));
            black_box(
                build_privtree(&mut dom, &params, &mut seeded(seed))
                    .unwrap()
                    .len(),
            )
        })
    });

    c.bench_function("privtree_sequential_build_gowalla_100k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut dom = QuadDomain::quadtree(&data, Rect::unit(2));
            black_box(
                build_privtree_sequential(&mut dom, &params, &mut seeded(seed))
                    .unwrap()
                    .len(),
            )
        })
    });
}

criterion_group!(benches, bench_build, bench_frontier_vs_sequential);
criterion_main!(benches);
