//! Criterion microbenches: range-query answering costs.

use criterion::{criterion_group, criterion_main, Criterion};
use privtree_baselines::{dawa_synopsis, privelet_synopsis, ug_synopsis};
use privtree_datagen::spatial::gowalla_like;
use privtree_datagen::workload::{range_queries, QuerySize};
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_spatial::geom::Rect;
use privtree_spatial::index::GridIndex;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::RangeCountSynopsis;
use privtree_spatial::synopsis::privtree_synopsis;
use std::hint::black_box;

fn bench_query(_c: &mut Criterion) {
    let mut c = Criterion::default().sample_size(20);
    let c = &mut c;
    let data = gowalla_like(100_000, 1);
    let domain = Rect::unit(2);
    let eps = Epsilon::new(1.0).unwrap();
    let queries = range_queries(&domain, QuerySize::Medium, 256, 7);

    let privtree =
        privtree_synopsis(&data, domain, SplitConfig::full(2), eps, &mut seeded(2)).unwrap();
    c.bench_function("answer_privtree_medium_x256", |b| {
        b.iter(|| {
            let s: f64 = queries.iter().map(|q| privtree.answer(q)).sum();
            black_box(s)
        })
    });

    let ug = ug_synopsis(&data, &domain, eps, 1.0, &mut seeded(3));
    c.bench_function("answer_ug_medium_x256", |b| {
        b.iter(|| {
            let s: f64 = queries.iter().map(|q| ug.answer(q)).sum();
            black_box(s)
        })
    });

    let privelet = privelet_synopsis(&data, &domain, eps, 20, &mut seeded(4));
    c.bench_function("answer_privelet_1m_cells_medium_x256", |b| {
        b.iter(|| {
            let s: f64 = queries.iter().map(|q| privelet.answer(q)).sum();
            black_box(s)
        })
    });

    let dawa = dawa_synopsis(&data, &domain, eps, 20, &mut seeded(5));
    c.bench_function("answer_dawa_medium_x256", |b| {
        b.iter(|| {
            let s: f64 = queries.iter().map(|q| dawa.answer(q)).sum();
            black_box(s)
        })
    });

    let index = GridIndex::build(&data, &domain);
    c.bench_function("exact_count_gridindex_medium_x256", |b| {
        b.iter(|| {
            let s: u64 = queries.iter().map(|q| index.count(&data, &q.rect)).sum();
            black_box(s)
        })
    });
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
