//! Criterion microbenches: range-query answering costs, including the
//! batched frozen-vs-tree-walk comparison (summarized into
//! `BENCH_query_batch.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use privtree_baselines::{dawa_synopsis, privelet_synopsis, ug_synopsis};
use privtree_datagen::spatial::gowalla_like;
use privtree_datagen::workload::{range_queries, QuerySize};
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_spatial::geom::Rect;
use privtree_spatial::index::GridIndex;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::RangeCountSynopsis;
use privtree_spatial::synopsis::privtree_synopsis;
use std::hint::black_box;
use std::time::Instant;

fn bench_query(_c: &mut Criterion) {
    let mut c = Criterion::default().sample_size(20);
    let c = &mut c;
    let data = gowalla_like(100_000, 1);
    let domain = Rect::unit(2);
    let eps = Epsilon::new(1.0).unwrap();
    let queries = range_queries(&domain, QuerySize::Medium, 256, 7);

    let privtree =
        privtree_synopsis(&data, domain, SplitConfig::full(2), eps, &mut seeded(2)).unwrap();
    c.bench_function("answer_privtree_medium_x256", |b| {
        b.iter(|| {
            let s: f64 = queries.iter().map(|q| privtree.answer(q)).sum();
            black_box(s)
        })
    });

    let ug = ug_synopsis(&data, &domain, eps, 1.0, &mut seeded(3));
    c.bench_function("answer_ug_medium_x256", |b| {
        b.iter(|| {
            let s: f64 = queries.iter().map(|q| ug.answer(q)).sum();
            black_box(s)
        })
    });

    let privelet = privelet_synopsis(&data, &domain, eps, 20, &mut seeded(4));
    c.bench_function("answer_privelet_1m_cells_medium_x256", |b| {
        b.iter(|| {
            let s: f64 = queries.iter().map(|q| privelet.answer(q)).sum();
            black_box(s)
        })
    });

    let dawa = dawa_synopsis(&data, &domain, eps, 20, &mut seeded(5));
    c.bench_function("answer_dawa_medium_x256", |b| {
        b.iter(|| {
            let s: f64 = queries.iter().map(|q| dawa.answer(q)).sum();
            black_box(s)
        })
    });

    let index = GridIndex::build(&data, &domain);
    c.bench_function("exact_count_gridindex_medium_x256", |b| {
        b.iter(|| {
            let s: u64 = queries.iter().map(|q| index.count(&data, &q.rect)).sum();
            black_box(s)
        })
    });
}

/// Batched-query throughput: the same PrivTree release served through the
/// pointer-walk tree versus the frozen structure-of-arrays engine. Writes
/// a machine-readable summary to `BENCH_query_batch.json`.
fn bench_query_batch(c: &mut Criterion) {
    let data = gowalla_like(100_000, 1);
    let domain = Rect::unit(2);
    let eps = Epsilon::new(1.0).unwrap();
    let queries = range_queries(&domain, QuerySize::Medium, 1024, 7);

    let tree_walk =
        privtree_synopsis(&data, domain, SplitConfig::full(2), eps, &mut seeded(2)).unwrap();
    let frozen = tree_walk.freeze();

    c.bench_function("answer_batch_treewalk_medium_x1024", |b| {
        b.iter(|| black_box(tree_walk.answer_batch(&queries)))
    });
    c.bench_function("answer_batch_frozen_medium_x1024", |b| {
        b.iter(|| black_box(frozen.answer_batch(&queries)))
    });

    // timed summary for the JSON artifact: best of `samples` wall-clock
    // runs per engine, plus derived throughput
    let samples = 15;
    let time_best = |f: &mut dyn FnMut() -> f64| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let start = Instant::now();
            black_box(f());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let walk_secs = time_best(&mut || tree_walk.answer_batch(&queries).iter().sum());
    let frozen_secs = time_best(&mut || frozen.answer_batch(&queries).iter().sum());
    let n = queries.len() as f64;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"query_batch\",\n",
            "  \"dataset\": \"gowalla_like_100k\",\n",
            "  \"queries\": {},\n",
            "  \"nodes\": {},\n",
            "  \"treewalk_best_secs\": {:.9},\n",
            "  \"frozen_best_secs\": {:.9},\n",
            "  \"treewalk_qps\": {:.1},\n",
            "  \"frozen_qps\": {:.1},\n",
            "  \"frozen_speedup\": {:.3}\n",
            "}}\n"
        ),
        queries.len(),
        frozen.node_count(),
        walk_secs,
        frozen_secs,
        n / walk_secs,
        n / frozen_secs,
        walk_secs / frozen_secs,
    );
    match std::fs::write("BENCH_query_batch.json", &json) {
        Ok(()) => println!("wrote BENCH_query_batch.json:\n{json}"),
        Err(e) => eprintln!("could not write BENCH_query_batch.json: {e}\n{json}"),
    }
}

criterion_group!(benches, bench_query, bench_query_batch);
criterion_main!(benches);
