//! Criterion microbenches: DP primitives and substrate operations.

use criterion::{criterion_group, criterion_main, Criterion};
use privtree_baselines::hilbert::{curve_order, hilbert_d2xy};
use privtree_baselines::wavelet::{haar_forward, haar_inverse};
use privtree_dp::laplace::Laplace;
use privtree_dp::rng::seeded;
use privtree_svt::variants::improved_svt;
use std::hint::black_box;

fn bench_mechanisms(c: &mut Criterion) {
    c.bench_function("laplace_sample_x1000", |b| {
        let d = Laplace::centered(1.0).unwrap();
        let mut rng = seeded(1);
        b.iter(|| {
            let mut s = 0.0;
            for _ in 0..1000 {
                s += d.sample(&mut rng);
            }
            black_box(s)
        })
    });

    c.bench_function("laplace_cdf_sf_x1000", |b| {
        let d = Laplace::centered(2.0).unwrap();
        b.iter(|| {
            let mut s = 0.0;
            for i in 0..1000 {
                let x = (i as f64) * 0.01 - 5.0;
                s += d.cdf(x) + d.sf(x);
            }
            black_box(s)
        })
    });

    c.bench_function("haar_round_trip_64k", |b| {
        let mut rng = seeded(2);
        use rand::RngExt;
        let orig: Vec<f64> = (0..65536).map(|_| rng.random::<f64>()).collect();
        b.iter(|| {
            let mut v = orig.clone();
            haar_forward(&mut v);
            haar_inverse(&mut v);
            black_box(v[0])
        })
    });

    c.bench_function("hilbert_d2xy_x4096", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for h in 0..4096u64 {
                let (x, y) = hilbert_d2xy(1024, h);
                acc ^= x ^ y;
            }
            black_box(acc)
        })
    });

    c.bench_function("curve_order_2d_256", |b| {
        b.iter(|| black_box(curve_order(2, 256).len()))
    });

    c.bench_function("improved_svt_1000_queries", |b| {
        let answers: Vec<f64> = (0..1000).map(|i| (i % 20) as f64 - 10.0).collect();
        let mut rng = seeded(3);
        b.iter(|| black_box(improved_svt(&answers, 0.0, 2.0, 10, &mut rng).len()))
    });
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
