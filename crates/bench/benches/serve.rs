//! Serving-engine throughput: the same PrivTree release answering
//! 10,000-query workloads through every read engine — the plain frozen
//! traversal (single-threaded and pool-chunked), the sharded re-layout,
//! and the grid-routed accelerator (summed-area interior + cell-anchored
//! boundary shell, with and without Morton batch reordering). Verifies
//! the equality contracts between configurations and writes a
//! machine-readable summary to `BENCH_serve.json` (including the
//! machine's core count — pool speedups are bounded by physical
//! parallelism; the grid-routed speedup is algorithmic, so it must show
//! even on one core). An **epoch-churn** lane drives the
//! `privtree-engine` `ReleaseStore`: per-snapshot qps before and after an
//! epoch swap, plus the swap latency itself (routing arena + one shard
//! grid — the incremental-rebuild contract is asserted in-bench). A
//! **load** lane times text parse vs `privtree-bin` decode of the same
//! release (plain and gridded; identical arrays asserted in-bench), and
//! a **concurrent-TCP** lane hammers an in-process `privtree-serve`
//! listener with 1/2/4/8 client threads over both protocols — text
//! `batch` commands and binary `privtree-wire` frames — and records the
//! reactor's cross-connection coalescing counters. A **telemetry** lane
//! prices timing capture (qps with the runtime switch on vs off,
//! target <2%) and scrapes the reactor's per-stage tick histograms off
//! the `metrics` verb into the record.
//! `cargo bench --bench serve -- --test` (or `PRIVTREE_BENCH_SMOKE=1`)
//! runs a quick smoke configuration and skips the JSON artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use privtree_datagen::spatial::gowalla_like;
use privtree_datagen::workload::{range_queries, QuerySize};
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_engine::serve::{spawn_tcp, spawn_tcp_with, ServeContext, ServeOptions};
use privtree_engine::wire::WireClient;
use privtree_engine::ReleaseStore;
use privtree_runtime::{telemetry, ShutdownSignal, WorkerPool};
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::query::RangeQuery;
use privtree_spatial::sharded::ShardedSynopsis;
use privtree_spatial::synopsis::privtree_synopsis;
use privtree_spatial::{FrozenSynopsis, GridRoutedSynopsis};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Best-of-N wall clock of an arbitrary action.
fn best_time(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// [`best_time`] over an answer-producing workload, with the result
/// sunk through `black_box` so the answers are not optimized away.
fn best_secs(samples: usize, mut f: impl FnMut() -> Vec<f64>) -> f64 {
    best_time(samples, || {
        black_box(f());
    })
}

fn assert_bits_equal(label: &str, reference: &[f64], got: &[f64]) {
    assert_eq!(reference.len(), got.len(), "{label}");
    for (a, b) in reference.iter().zip(got) {
        assert_eq!(a.to_bits(), b.to_bits(), "{label} diverged");
    }
}

fn bench_serve(c: &mut Criterion) {
    let smoke = criterion::test_mode() || std::env::var_os("PRIVTREE_BENCH_SMOKE").is_some();
    let (points, per_workload, samples) = if smoke {
        (20_000, 500, 2)
    } else {
        (100_000, 10_000, 15)
    };

    let data = gowalla_like(points, 1);
    let domain = Rect::unit(2);
    let eps = Epsilon::new(1.0).unwrap();

    let frozen: FrozenSynopsis =
        privtree_synopsis(&data, domain, SplitConfig::full(2), eps, &mut seeded(2))
            .unwrap()
            .freeze();
    let sharded = ShardedSynopsis::from_frozen(&frozen, 2).unwrap();

    // PRIVTREE_GRID_BINS=<n> sweeps the resolution; default heuristic otherwise
    let bins_override = std::env::var("PRIVTREE_GRID_BINS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    let grid_build_start = Instant::now();
    let grid = match bins_override {
        Some(b) => GridRoutedSynopsis::with_bins(frozen.clone(), &[b, b]).unwrap(),
        None => GridRoutedSynopsis::build(frozen.clone()).unwrap(),
    };
    let grid_build_secs = grid_build_start.elapsed().as_secs_f64();

    let pool1 = WorkerPool::new(1);
    let pool4 = WorkerPool::new(4);
    let pool8 = WorkerPool::new(8);

    // the contracts first, on the medium workload: every frozen/sharded
    // configuration returns identical bits; grid-routed matches the plain
    // traversal numerically and is itself bit-stable across its batch paths
    let medium = range_queries(&domain, QuerySize::Medium, per_workload, 7);
    let reference = frozen.answer_batch_sequential(&medium);
    for (label, got) in [
        (
            "frozen_pool1",
            frozen.answer_batch_with_pool(&medium, &pool1),
        ),
        (
            "frozen_pool4",
            frozen.answer_batch_with_pool(&medium, &pool4),
        ),
        (
            "frozen_pool8",
            frozen.answer_batch_with_pool(&medium, &pool8),
        ),
        ("sharded_seq", sharded.answer_batch_sequential(&medium)),
        (
            "sharded_pool8",
            sharded.answer_batch_with_pool(&medium, &pool8),
        ),
    ] {
        assert_bits_equal(label, &reference, &got);
    }
    let grid_medium = grid.answer_batch_sequential(&medium);
    for (a, b) in reference.iter().zip(&grid_medium) {
        let tol = 1e-9 * a.abs().max(1.0);
        assert!((a - b).abs() <= tol, "grid_routed vs frozen: {a} vs {b}");
    }
    assert_bits_equal(
        "grid_morton",
        &grid_medium,
        &grid.answer_batch_morton(&medium),
    );
    assert_bits_equal(
        "grid_pool8",
        &grid_medium,
        &grid.answer_batch_with_pool(&medium, &pool8),
    );

    c.bench_function("serve_frozen_sequential_medium", |b| {
        b.iter(|| black_box(frozen.answer_batch_sequential(&medium)))
    });
    c.bench_function("serve_grid_routed_medium", |b| {
        b.iter(|| black_box(grid.answer_batch_sequential(&medium)))
    });
    c.bench_function("serve_grid_routed_morton_medium", |b| {
        b.iter(|| black_box(grid.answer_batch_morton(&medium)))
    });
    c.bench_function("serve_frozen_pool8_medium", |b| {
        b.iter(|| black_box(frozen.answer_batch_with_pool(&medium, &pool8)))
    });
    c.bench_function("serve_sharded_pool8_medium", |b| {
        b.iter(|| black_box(sharded.answer_batch_with_pool(&medium, &pool8)))
    });

    // wall-clock summary across the paper's three workload classes
    let mut workload_json = String::new();
    let mut medium_frozen_qps = 0.0;
    let mut medium_grid_qps = 0.0;
    let mut medium_grid_morton_qps = 0.0;
    for size in QuerySize::all() {
        let queries = range_queries(&domain, size, per_workload, 7);
        let frozen_ref = frozen.answer_batch_sequential(&queries);
        let grid_got = grid.answer_batch_sequential(&queries);
        for (a, b) in frozen_ref.iter().zip(&grid_got) {
            let tol = 1e-9 * a.abs().max(1.0);
            assert!((a - b).abs() <= tol, "{}: {a} vs {b}", size.name());
        }
        let t_frozen = best_secs(samples, || frozen.answer_batch_sequential(&queries));
        let t_grid = best_secs(samples, || grid.answer_batch_sequential(&queries));
        let t_morton = best_secs(samples, || grid.answer_batch_morton(&queries));
        let n = queries.len() as f64;
        if size == QuerySize::Medium {
            medium_frozen_qps = n / t_frozen;
            medium_grid_qps = n / t_grid;
            medium_grid_morton_qps = n / t_morton;
        }
        workload_json.push_str(&format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"frozen_seq_qps\": {:.1},\n",
                "      \"grid_routed_qps\": {:.1},\n",
                "      \"grid_routed_morton_qps\": {:.1},\n",
                "      \"grid_speedup\": {:.3}\n",
                "    }}{}\n"
            ),
            size.name(),
            n / t_frozen,
            n / t_grid,
            n / t_morton,
            t_frozen / t_grid,
            if size == QuerySize::Large { "" } else { "," },
        ));
    }

    // ---- epoch churn through the engine: answer / swap one shard /
    // answer. The store serves four strip releases with per-shard grids;
    // a swap must rebuild exactly one grid plus the 5-node routing arena,
    // retained snapshots must stay frozen, and the swapped store must
    // answer bit-identically to a from-scratch gridded rebuild. ----
    const STRIPS: usize = 4;
    let mut strip_sets: Vec<PointSet> = (0..STRIPS).map(|_| PointSet::new(2)).collect();
    for p in data.iter() {
        let s = ((p[0] * STRIPS as f64) as usize).min(STRIPS - 1);
        strip_sets[s].push(p);
    }
    let strip_release = |i: usize, seed: u64| -> FrozenSynopsis {
        let lo = i as f64 / STRIPS as f64;
        let hi = (i + 1) as f64 / STRIPS as f64;
        let region = Rect::new(&[lo, 0.0], &[hi, 1.0]);
        privtree_synopsis(
            &strip_sets[i],
            region,
            SplitConfig::full(2),
            eps,
            &mut seeded(seed),
        )
        .unwrap()
        .freeze()
    };
    let store = ReleaseStore::open_gridded(
        (0..STRIPS).map(|i| (format!("strip{i}"), strip_release(i, 100 + i as u64))),
    )
    .unwrap();
    let next_epochs = [strip_release(0, 200), strip_release(0, 201)];

    let churn_before = store.snapshot();
    let churn_reference = churn_before.synopsis().answer_batch_sequential(&medium);
    let t_churn_before = best_secs(samples, || {
        churn_before.synopsis().answer_batch_sequential(&medium)
    });
    let mut swap_best_secs = f64::INFINITY;
    let mut churn_report = None;
    for s in 0..samples.max(2) {
        let replacement = next_epochs[s % 2].clone();
        let swap_start = Instant::now();
        let report = store.swap("strip0", replacement).unwrap();
        swap_best_secs = swap_best_secs.min(swap_start.elapsed().as_secs_f64());
        assert_eq!(report.grids_built, 1, "swap must rebuild exactly one grid");
        assert_eq!(report.shards_reused, STRIPS - 1);
        churn_report = Some(report);
    }
    let churn_report = churn_report.expect("at least one swap ran");
    let churn_after = store.snapshot();
    let t_churn_after = best_secs(samples, || {
        churn_after.synopsis().answer_batch_sequential(&medium)
    });
    // retained snapshots are frozen across swaps
    assert_bits_equal(
        "epoch_churn_retained_snapshot",
        &churn_reference,
        &churn_before.synopsis().answer_batch_sequential(&medium),
    );
    // the incrementally swapped store equals a from-scratch gridded build
    let fresh = ShardedSynopsis::from_releases(
        (0..STRIPS)
            .map(|i| churn_after.synopsis().shards()[i].arena().clone())
            .collect(),
    )
    .unwrap()
    .with_shard_grids()
    .unwrap();
    assert_bits_equal(
        "epoch_churn_fresh_rebuild",
        &fresh.answer_batch_sequential(&medium),
        &churn_after.synopsis().answer_batch_sequential(&medium),
    );

    // ---- the load lane: text parse vs privtree-bin decode of the same
    // release, plain and gridded. The binary path must hand back the
    // exact arrays the text path produces (asserted), and it skips all
    // per-line float parsing — the speedup is the point of the format. ----
    use privtree_spatial::serialize::{frozen_to_text, release_from_text, release_to_text};
    use privtree_store::{decode_release, text_to_binary};
    let plain_text = frozen_to_text(&frozen);
    let plain_binary = text_to_binary(&plain_text).expect("text converts");
    let gridded_text = release_to_text(grid.frozen(), Some(grid.grid()));
    let gridded_binary = text_to_binary(&gridded_text).expect("gridded text converts");
    {
        let (t, tg) = release_from_text(&plain_text).unwrap();
        let (b, bg) = decode_release(&plain_binary).unwrap();
        assert!(tg.is_none() && bg.is_none());
        assert_eq!(t.lo_coords(), b.lo_coords(), "load lane: lo diverged");
        assert_eq!(t.hi_coords(), b.hi_coords(), "load lane: hi diverged");
        assert_eq!(t.first_child(), b.first_child());
        assert_eq!(t.child_count(), b.child_count());
        assert_eq!(t.counts(), b.counts(), "load lane: counts diverged");
        let (_, tg) = release_from_text(&gridded_text).unwrap();
        let (_, bg) = decode_release(&gridded_binary).unwrap();
        let (tg, bg) = (tg.unwrap(), bg.unwrap());
        assert_eq!(tg.anchors(), bg.anchors(), "load lane: anchors diverged");
        assert_eq!(tg.values(), bg.values(), "load lane: values diverged");
    }
    let load_samples = samples.max(3);
    let text_parse_secs = best_time(load_samples, || {
        black_box(release_from_text(black_box(&plain_text)).unwrap());
    });
    let binary_decode_secs = best_time(load_samples, || {
        black_box(decode_release(black_box(&plain_binary)).unwrap());
    });
    let gridded_text_parse_secs = best_time(load_samples, || {
        black_box(release_from_text(black_box(&gridded_text)).unwrap());
    });
    let gridded_binary_decode_secs = best_time(load_samples, || {
        black_box(decode_release(black_box(&gridded_binary)).unwrap());
    });

    // ---- the mmap sub-lane: catalog warm start through the zero-copy
    // path (map + header walk + whole-file CRC, columns borrowed from
    // the page cache, grid left staged) against the owned catalog load
    // (read + CRC + full decode + eager grid build) of the same gowalla
    // release. Mapped answers must be bit-identical to owned answers. ----
    use privtree_store::{Catalog, ReleaseFormat};
    let mmap_dir = std::env::temp_dir().join(format!("privtree-bench-mmap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&mmap_dir);
    let mut mmap_catalog = Catalog::open_or_create(&mmap_dir).expect("bench catalog");
    mmap_catalog
        .import("gowalla", &gridded_binary, ReleaseFormat::Binary)
        .expect("import the gowalla release");
    let mapped_release = mmap_catalog
        .load_mapped("gowalla")
        .expect("map the release");
    let mmap_mapped_bytes = mapped_release.mapped_bytes;
    drop(mapped_release);
    {
        let mapped = ReleaseStore::open_catalog_with(&mmap_catalog, true, true).unwrap();
        let owned = ReleaseStore::open_catalog_with(&mmap_catalog, true, false).unwrap();
        assert_bits_equal(
            "load lane: mmap-served vs owned-load answers",
            &owned.snapshot().synopsis().answer_batch_sequential(&medium),
            &mapped
                .snapshot()
                .synopsis()
                .answer_batch_sequential(&medium),
        );
    }
    let mmap_open_secs = best_time(load_samples, || {
        black_box(mmap_catalog.load_mapped("gowalla").unwrap());
    });
    let mmap_owned_load_secs = best_time(load_samples, || {
        black_box(mmap_catalog.load("gowalla").unwrap());
    });
    // First query on a fresh mapped open: the one-time cost a cold
    // replica actually pays, including the staged grid's lazy assembly.
    let first_query = std::slice::from_ref(&medium[0]);
    let mmap_first_query_secs = best_time(load_samples, || {
        let store = ReleaseStore::open_catalog_with(&mmap_catalog, true, true).unwrap();
        black_box(
            store
                .snapshot()
                .synopsis()
                .answer_batch_sequential(black_box(first_query)),
        );
    });
    let _ = std::fs::remove_dir_all(&mmap_dir);

    // ---- the sustained-churn lane: strip0 swapped every few ms under
    // continuous query load, with the durable mutation journal off and
    // on (fsync=always and fsync=every:8). Each swap in the journaled
    // configs goes journal-before-ack through the engine's persist
    // hook, exactly like a `--journal` server; the lane records swap
    // p99 and read qps per config, so the journal's overhead on both
    // the mutation path and the read path lands in the artifact. ----
    use privtree_spatial::sharded::ShardHandle;
    use privtree_store::FsyncPolicy;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    let churn_interval = Duration::from_millis(if smoke { 1 } else { 5 });
    let churn_swaps = if smoke { 4 } else { 60 };
    let churn_queries = &medium[..medium.len().min(200)];
    let strip_frozen: Vec<FrozenSynopsis> = (0..STRIPS)
        .map(|i| strip_release(i, 100 + i as u64))
        .collect();
    let churn_lane = |tag: &str, policy: Option<FsyncPolicy>| -> (f64, f64) {
        let dir =
            std::env::temp_dir().join(format!("privtree-bench-churn-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut catalog = Catalog::open_or_create(&dir).expect("churn catalog");
        catalog.set_retention(2);
        for (i, frozen) in strip_frozen.iter().enumerate() {
            catalog
                .save(&format!("strip{i}"), frozen, None, ReleaseFormat::Binary)
                .unwrap();
        }
        if let Some(policy) = policy {
            catalog.enable_journal(policy).unwrap();
        }
        let store = ReleaseStore::open(strip_frozen.iter().enumerate().map(|(i, frozen)| {
            (
                format!("strip{i}"),
                ShardHandle::from_release(frozen.clone(), None),
            )
        }))
        .unwrap();
        let stop = AtomicBool::new(false);
        let answered = AtomicU64::new(0);
        let mut latencies = Vec::with_capacity(churn_swaps);
        let churn_start = Instant::now();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let snap = store.snapshot();
                    black_box(snap.synopsis().answer_batch_sequential(churn_queries));
                    answered.fetch_add(churn_queries.len() as u64, Ordering::Relaxed);
                }
            });
            for s in 0..churn_swaps {
                let replacement = ShardHandle::from_release(next_epochs[s % 2].clone(), None);
                let swap_start = Instant::now();
                if policy.is_some() {
                    store
                        .swap_with("strip0", replacement, |next| {
                            let shard = next.get("strip0").expect("the swap staged strip0");
                            let bytes = privtree_store::encode_release(
                                shard.arena(),
                                shard.grid().map(|g| g.as_ref()),
                            );
                            catalog
                                .import("strip0", &bytes, ReleaseFormat::Binary)
                                .map(|_| ())
                                .map_err(privtree_engine::EngineError::Store)
                        })
                        .unwrap();
                } else {
                    store.swap("strip0", replacement).unwrap();
                }
                latencies.push(swap_start.elapsed().as_secs_f64());
                std::thread::sleep(churn_interval);
            }
            stop.store(true, Ordering::Relaxed);
        });
        let elapsed = churn_start.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&dir);
        latencies.sort_by(f64::total_cmp);
        let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
        (p99, answered.load(Ordering::Relaxed) as f64 / elapsed)
    };
    let (churn_off_p99, churn_off_qps) = churn_lane("off", None);
    let (churn_always_p99, churn_always_qps) =
        churn_lane("fsync-always", Some(FsyncPolicy::Always));
    let (churn_every8_p99, churn_every8_qps) =
        churn_lane("fsync-every8", Some(FsyncPolicy::EveryN(8)));
    let churn_overhead_pct = (churn_always_p99 - churn_off_p99) / churn_off_p99 * 100.0;

    // ---- the concurrent-TCP lane: an in-process privtree-serve
    // listener (gridded single-release store, every connection
    // multiplexed onto the reactor thread, shared global pool) hammered
    // by N client threads — text clients streaming `batch` commands and
    // binary clients streaming `privtree-wire` QRYB frames; every reply
    // is diffed against the library answer (text as its exact %.17e
    // rendering, binary bit for bit). The lane measures *protocol*
    // cost, so it uses the small-query workload (cheap grid-routed
    // answers — encode/decode dominates, which is what the two wire
    // formats differ in), and both clients pay their encode every
    // round: text renders its `batch` payload per round exactly like
    // the binary client packs its frame per round. ----
    let tcp_workload = range_queries(&domain, QuerySize::Small, per_workload, 11);
    let tcp_store = ReleaseStore::open_gridded([("gowalla", frozen.clone())]).unwrap();
    let tcp_expected_f64 = Arc::new(
        tcp_store
            .snapshot()
            .synopsis()
            .answer_batch_sequential(&tcp_workload),
    );
    let tcp_expected: Vec<String> = tcp_expected_f64
        .iter()
        .map(|a| format!("{a:.17e}"))
        .collect();
    let tcp_server = spawn_tcp(Arc::new(ServeContext::new(tcp_store)), "127.0.0.1:0")
        .expect("bind the bench listener");
    let tcp_addr = tcp_server.addr();
    let render_batch = |queries: &[RangeQuery]| {
        use std::fmt::Write as _;
        let mut payload = String::with_capacity(72 * queries.len() + 16);
        let _ = writeln!(payload, "batch {}", queries.len());
        for q in queries {
            for (i, c) in q.rect.lo().iter().enumerate() {
                if i > 0 {
                    payload.push(',');
                }
                let _ = write!(payload, "{c:.17e}");
            }
            payload.push(' ');
            for (i, c) in q.rect.hi().iter().enumerate() {
                if i > 0 {
                    payload.push(',');
                }
                let _ = write!(payload, "{c:.17e}");
            }
            payload.push('\n');
        }
        payload
    };
    let tcp_expected = Arc::new(tcp_expected);
    let tcp_rounds = if smoke { 1 } else { 4 };
    let run_sweep = |addr: std::net::SocketAddr| -> Vec<(usize, f64)> {
        let mut lanes = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let expected = Arc::clone(&tcp_expected);
                    let queries = &tcp_workload;
                    let render_batch = &render_batch;
                    scope.spawn(move || {
                        let stream =
                            std::net::TcpStream::connect(addr).expect("connect to bench listener");
                        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                        let mut writer = std::io::BufWriter::new(stream);
                        let mut reply = String::new();
                        for _ in 0..tcp_rounds {
                            let payload = render_batch(queries);
                            writer.write_all(payload.as_bytes()).expect("send batch");
                            writer.flush().expect("flush batch");
                            for want in expected.iter() {
                                reply.clear();
                                reader.read_line(&mut reply).expect("read reply");
                                assert_eq!(reply.trim_end(), want, "TCP answer diverged");
                            }
                        }
                        let _ = writer.write_all(b"quit\n");
                        let _ = writer.flush();
                    });
                }
            });
            let elapsed = start.elapsed().as_secs_f64();
            let total = (threads * tcp_rounds * tcp_workload.len()) as f64;
            lanes.push((threads, total / elapsed));
        }
        lanes
    };
    // the same sweep over the binary protocol: each client thread ships
    // the whole workload as a single privtree-wire QRYB frame per round
    // and checks the ANSV payload bit for bit against the library answer
    let run_wire_sweep = |addr: std::net::SocketAddr| -> Vec<(usize, f64)> {
        let mut lanes = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let expected = Arc::clone(&tcp_expected_f64);
                    let queries = &tcp_workload;
                    scope.spawn(move || {
                        let mut client =
                            WireClient::connect(addr).expect("connect to bench listener");
                        for _ in 0..tcp_rounds {
                            let answers = client.query(queries).expect("binary batch");
                            for (want, got) in expected.iter().zip(answers.iter()) {
                                assert_eq!(
                                    want.to_bits(),
                                    got.to_bits(),
                                    "binary TCP answer diverged"
                                );
                            }
                        }
                        let _ = client.quit();
                    });
                }
            });
            let elapsed = start.elapsed().as_secs_f64();
            let total = (threads * tcp_rounds * medium.len()) as f64;
            lanes.push((threads, total / elapsed));
        }
        lanes
    };
    let lanes_json = |lanes: &[(usize, f64)], indent: &str| {
        lanes
            .iter()
            .map(|(threads, qps)| format!("{indent}\"threads_{threads}_qps\": {qps:.1}"))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let tcp_lanes = run_sweep(tcp_addr);
    let wire_lanes = run_wire_sweep(tcp_addr);
    let tcp_json = lanes_json(&tcp_lanes, "      ");
    let wire_json = lanes_json(&wire_lanes, "      ");
    let binary_speedup_1_thread = wire_lanes[0].1 / tcp_lanes[0].1;

    // scrape the reactor's protocol counters off the shared listener so
    // the cross-connection coalescing behaviour lands in the JSON
    let tcp_stats = {
        let stream = std::net::TcpStream::connect(tcp_addr).expect("connect for stats");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut writer = std::io::BufWriter::new(stream);
        writer.write_all(b"stats\nquit\n").expect("send stats");
        writer.flush().expect("flush stats");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read stats");
        line
    };
    let stat = |key: &str| -> f64 {
        let needle = format!("{key}=");
        tcp_stats
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&needle))
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or_else(|| panic!("stats reply missing {key}: {tcp_stats}"))
    };
    let coalesced_dispatches = stat("coalesced_dispatches");
    let coalesced_queries = stat("coalesced_queries");
    let coalesced_spans = stat("coalesced_spans");
    let spans_per_dispatch = coalesced_spans / coalesced_dispatches.max(1.0);

    // the same sweep against a fully-guarded listener — read and write
    // deadlines armed, connection cap enforced — then a graceful drain;
    // the lifecycle guards must cost <2% qps on the hot path
    let hard_store = ReleaseStore::open_gridded([("gowalla", frozen.clone())]).unwrap();
    let hard_server = spawn_tcp_with(
        Arc::new(ServeContext::new(hard_store)),
        "127.0.0.1:0",
        ServeOptions {
            max_conns: 64,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            ..ServeOptions::default()
        },
        ShutdownSignal::new(),
    )
    .expect("bind the hardened bench listener");
    let hard_lanes = run_sweep(hard_server.addr());
    let hard_json = lanes_json(&hard_lanes, "    ");
    let drained = hard_server.drain(Duration::from_secs(5));
    assert!(drained, "hardened bench listener failed to drain");
    let overhead_pct = {
        let base = tcp_lanes.last().map(|(_, qps)| *qps).unwrap_or(1.0);
        let hard = hard_lanes.last().map(|(_, qps)| *qps).unwrap_or(1.0);
        (base - hard) / base * 100.0
    };

    // ---- telemetry overhead: the same small-query workload over the
    // binary protocol (the fastest serving path, so the clock reads are
    // the largest relative cost they can be) with timing capture on vs
    // off via the runtime switch. Counters record in both
    // configurations — only the Instant reads differ — and the target
    // is <2% qps. With timing back on, the reactor's per-stage tick
    // histograms are scraped off the `metrics` verb into the record. ----
    let telemetry_round = |addr: std::net::SocketAddr| -> f64 {
        let mut client = WireClient::connect(addr).expect("connect for telemetry lane");
        let start = Instant::now();
        for _ in 0..tcp_rounds {
            black_box(client.query(&tcp_workload).expect("telemetry lane batch"));
        }
        let elapsed = start.elapsed().as_secs_f64();
        let _ = client.quit();
        (tcp_rounds * tcp_workload.len()) as f64 / elapsed
    };
    // one discarded warm-up round, then interleaved best-of reps so
    // neither configuration soaks up cold-cache cost for the other
    let telemetry_reps = if smoke { 2 } else { 5 };
    telemetry_round(tcp_addr);
    let (mut telemetry_on_qps, mut telemetry_off_qps) = (0.0f64, 0.0f64);
    for _ in 0..telemetry_reps {
        telemetry::set_enabled(true);
        telemetry_on_qps = telemetry_on_qps.max(telemetry_round(tcp_addr));
        telemetry::set_enabled(false);
        telemetry_off_qps = telemetry_off_qps.max(telemetry_round(tcp_addr));
    }
    telemetry::set_enabled(true);
    let telemetry_overhead_pct = (telemetry_off_qps - telemetry_on_qps) / telemetry_off_qps * 100.0;

    let exposition = WireClient::connect(tcp_addr)
        .expect("connect for metrics scrape")
        .metrics()
        .expect("METR scrape");
    let metric = |key: &str| -> f64 {
        exposition
            .lines()
            .find_map(|l| {
                l.strip_prefix(key)
                    .and_then(|rest| rest.trim_start().parse().ok())
            })
            .unwrap_or_else(|| panic!("exposition missing {key}"))
    };
    let stage_json = ["decode", "coalesce", "dispatch", "scatter", "flush"]
        .iter()
        .map(|stage| {
            let p50 = metric(&format!(
                "reactor_stage_us{{stage=\"{stage}\",quantile=\"0.5\"}}"
            ));
            let p99 = metric(&format!(
                "reactor_stage_us{{stage=\"{stage}\",quantile=\"0.99\"}}"
            ));
            let ticks = metric(&format!("reactor_stage_us_count{{stage=\"{stage}\"}}"));
            format!(
                "      \"{stage}\": {{ \"p50_us\": {p50}, \"p99_us\": {p99}, \"ticks\": {ticks} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let seq = best_secs(samples, || frozen.answer_batch_sequential(&medium));
    let p4 = best_secs(samples, || frozen.answer_batch_with_pool(&medium, &pool4));
    let p8 = best_secs(samples, || frozen.answer_batch_with_pool(&medium, &pool8));
    let sh_p8 = best_secs(samples, || sharded.answer_batch_with_pool(&medium, &pool8));

    let n = medium.len() as f64;
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let bins = grid
        .grid()
        .bins()
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join("x");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"dataset\": \"gowalla_like_100k\",\n",
            "  \"queries_per_workload\": {},\n",
            "  \"nodes\": {},\n",
            "  \"shards\": {},\n",
            "  \"cores\": {},\n",
            "  \"grid_bins\": \"{}\",\n",
            "  \"grid_cells\": {},\n",
            "  \"grid_memory_bytes\": {},\n",
            "  \"grid_build_secs\": {:.6},\n",
            "  \"bit_identical\": true,\n",
            "  \"workloads\": {{\n",
            "{}",
            "  }},\n",
            "  \"epoch_churn\": {{\n",
            "    \"shards\": {},\n",
            "    \"swap_best_secs\": {:.6},\n",
            "    \"swap_grids_built\": {},\n",
            "    \"swap_grid_cells_built\": {},\n",
            "    \"swap_routing_nodes_rebuilt\": {},\n",
            "    \"snapshot_qps_before_swap\": {:.1},\n",
            "    \"snapshot_qps_after_swap\": {:.1}\n",
            "  }},\n",
            "  \"load\": {{\n",
            "    \"text_bytes\": {},\n",
            "    \"binary_bytes\": {},\n",
            "    \"text_parse_secs\": {:.6},\n",
            "    \"binary_decode_secs\": {:.6},\n",
            "    \"decode_speedup\": {:.2},\n",
            "    \"gridded_text_bytes\": {},\n",
            "    \"gridded_binary_bytes\": {},\n",
            "    \"gridded_text_parse_secs\": {:.6},\n",
            "    \"gridded_binary_decode_secs\": {:.6},\n",
            "    \"gridded_decode_speedup\": {:.2},\n",
            "    \"mmap\": {{\n",
            "      \"mapped_bytes\": {},\n",
            "      \"open_secs\": {:.6},\n",
            "      \"owned_load_secs\": {:.6},\n",
            "      \"first_query_secs\": {:.6},\n",
            "      \"speedup_vs_owned_decode\": {:.2}\n",
            "    }}\n",
            "  }},\n",
            "  \"sustained_churn\": {{\n",
            "    \"swaps_per_config\": {},\n",
            "    \"swap_interval_ms\": {},\n",
            "    \"journal_off\": {{ \"swap_p99_secs\": {:.6}, \"read_qps\": {:.1} }},\n",
            "    \"journal_fsync_always\": {{ \"swap_p99_secs\": {:.6}, \"read_qps\": {:.1} }},\n",
            "    \"journal_fsync_every8\": {{ \"swap_p99_secs\": {:.6}, \"read_qps\": {:.1} }},\n",
            "    \"journal_swap_overhead_pct\": {:.2}\n",
            "  }},\n",
            "  \"concurrent_tcp\": {{\n",
            "    \"query_size\": \"small\",\n",
            "    \"queries_per_batch\": {},\n",
            "    \"rounds_per_thread\": {},\n",
            "    \"text\": {{\n",
            "{}\n",
            "    }},\n",
            "    \"binary\": {{\n",
            "{}\n",
            "    }},\n",
            "    \"binary_speedup_1_thread\": {:.2},\n",
            "    \"coalesced_dispatches\": {},\n",
            "    \"coalesced_queries\": {},\n",
            "    \"coalesced_spans\": {},\n",
            "    \"spans_per_dispatch\": {:.2}\n",
            "  }},\n",
            "  \"hardening\": {{\n",
            "    \"read_timeout_secs\": 30,\n",
            "    \"write_timeout_secs\": 30,\n",
            "    \"max_conns\": 64,\n",
            "    \"drained_within_5s\": {},\n",
            "{},\n",
            "    \"overhead_pct_threads_8\": {:.2}\n",
            "  }},\n",
            "  \"telemetry\": {{\n",
            "    \"query_size\": \"small\",\n",
            "    \"on_qps\": {:.1},\n",
            "    \"off_qps\": {:.1},\n",
            "    \"overhead_pct\": {:.2},\n",
            "    \"reactor_stage_us\": {{\n",
            "{}\n",
            "    }}\n",
            "  }},\n",
            "  \"frozen_seq_qps\": {:.1},\n",
            "  \"grid_routed_qps\": {:.1},\n",
            "  \"grid_routed_morton_qps\": {:.1},\n",
            "  \"grid_speedup_medium\": {:.3},\n",
            "  \"frozen_pool4_qps\": {:.1},\n",
            "  \"frozen_pool8_qps\": {:.1},\n",
            "  \"sharded_pool8_qps\": {:.1},\n",
            "  \"pool4_speedup\": {:.3},\n",
            "  \"pool8_speedup\": {:.3}\n",
            "}}\n"
        ),
        per_workload,
        frozen.node_count(),
        sharded.shard_count(),
        cores,
        bins,
        grid.grid().cells(),
        grid.grid().memory_bytes(),
        grid_build_secs,
        workload_json,
        STRIPS,
        swap_best_secs,
        churn_report.grids_built,
        churn_report.grid_cells_built,
        churn_report.routing_nodes_rebuilt,
        medium.len() as f64 / t_churn_before,
        medium.len() as f64 / t_churn_after,
        plain_text.len(),
        plain_binary.len(),
        text_parse_secs,
        binary_decode_secs,
        text_parse_secs / binary_decode_secs,
        gridded_text.len(),
        gridded_binary.len(),
        gridded_text_parse_secs,
        gridded_binary_decode_secs,
        gridded_text_parse_secs / gridded_binary_decode_secs,
        mmap_mapped_bytes,
        mmap_open_secs,
        mmap_owned_load_secs,
        mmap_first_query_secs,
        mmap_owned_load_secs / mmap_open_secs,
        churn_swaps,
        churn_interval.as_millis(),
        churn_off_p99,
        churn_off_qps,
        churn_always_p99,
        churn_always_qps,
        churn_every8_p99,
        churn_every8_qps,
        churn_overhead_pct,
        tcp_workload.len(),
        tcp_rounds,
        tcp_json,
        wire_json,
        binary_speedup_1_thread,
        coalesced_dispatches,
        coalesced_queries,
        coalesced_spans,
        spans_per_dispatch,
        drained,
        hard_json,
        overhead_pct,
        telemetry_on_qps,
        telemetry_off_qps,
        telemetry_overhead_pct,
        stage_json,
        medium_frozen_qps,
        medium_grid_qps,
        medium_grid_morton_qps,
        medium_grid_qps / medium_frozen_qps,
        n / p4,
        n / p8,
        n / sh_p8,
        seq / p4,
        seq / p8,
    );
    if smoke {
        println!("smoke mode: skipping BENCH_serve.json\n{json}");
    } else {
        match std::fs::write("BENCH_serve.json", &json) {
            Ok(()) => println!("wrote BENCH_serve.json:\n{json}"),
            Err(e) => eprintln!("could not write BENCH_serve.json: {e}\n{json}"),
        }
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
