//! Serving-engine throughput: the same PrivTree release answering a
//! 10,000-query workload single-threaded versus chunked across the
//! persistent worker pool at 1/4/8 workers, frozen and sharded. Verifies
//! bit-identity between every configuration and writes a
//! machine-readable summary to `BENCH_serve.json` (including the
//! machine's core count — pool speedups are bounded by physical
//! parallelism, so the numbers are only comparable per machine).

use criterion::{criterion_group, criterion_main, Criterion};
use privtree_datagen::spatial::gowalla_like;
use privtree_datagen::workload::{range_queries, QuerySize};
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_runtime::WorkerPool;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::sharded::ShardedSynopsis;
use privtree_spatial::synopsis::privtree_synopsis;
use privtree_spatial::FrozenSynopsis;
use std::hint::black_box;
use std::time::Instant;

fn best_secs(samples: usize, mut f: impl FnMut() -> Vec<f64>) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench_serve(c: &mut Criterion) {
    let data = gowalla_like(100_000, 1);
    let domain = Rect::unit(2);
    let eps = Epsilon::new(1.0).unwrap();
    let queries = range_queries(&domain, QuerySize::Medium, 10_000, 7);

    let frozen: FrozenSynopsis =
        privtree_synopsis(&data, domain, SplitConfig::full(2), eps, &mut seeded(2))
            .unwrap()
            .freeze();
    let sharded = ShardedSynopsis::from_frozen(&frozen, 2);

    let pool1 = WorkerPool::new(1);
    let pool4 = WorkerPool::new(4);
    let pool8 = WorkerPool::new(8);

    // the contract first: every configuration returns identical bits
    let reference = frozen.answer_batch_sequential(&queries);
    for (label, got) in [
        (
            "frozen_pool1",
            frozen.answer_batch_with_pool(&queries, &pool1),
        ),
        (
            "frozen_pool4",
            frozen.answer_batch_with_pool(&queries, &pool4),
        ),
        (
            "frozen_pool8",
            frozen.answer_batch_with_pool(&queries, &pool8),
        ),
        ("sharded_seq", sharded.answer_batch_sequential(&queries)),
        (
            "sharded_pool8",
            sharded.answer_batch_with_pool(&queries, &pool8),
        ),
    ] {
        assert_eq!(reference.len(), got.len(), "{label}");
        for (a, b) in reference.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits(), "{label} diverged");
        }
    }

    c.bench_function("serve_frozen_sequential_10k", |b| {
        b.iter(|| black_box(frozen.answer_batch_sequential(&queries)))
    });
    c.bench_function("serve_frozen_pool8_10k", |b| {
        b.iter(|| black_box(frozen.answer_batch_with_pool(&queries, &pool8)))
    });
    c.bench_function("serve_sharded_pool8_10k", |b| {
        b.iter(|| black_box(sharded.answer_batch_with_pool(&queries, &pool8)))
    });

    // wall-clock summary for the JSON artifact
    let samples = 15;
    let seq = best_secs(samples, || frozen.answer_batch_sequential(&queries));
    let p1 = best_secs(samples, || frozen.answer_batch_with_pool(&queries, &pool1));
    let p4 = best_secs(samples, || frozen.answer_batch_with_pool(&queries, &pool4));
    let p8 = best_secs(samples, || frozen.answer_batch_with_pool(&queries, &pool8));
    let sh_seq = best_secs(samples, || sharded.answer_batch_sequential(&queries));
    let sh_p8 = best_secs(samples, || sharded.answer_batch_with_pool(&queries, &pool8));

    let n = queries.len() as f64;
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"dataset\": \"gowalla_like_100k\",\n",
            "  \"queries\": {},\n",
            "  \"nodes\": {},\n",
            "  \"shards\": {},\n",
            "  \"cores\": {},\n",
            "  \"bit_identical\": true,\n",
            "  \"frozen_seq_secs\": {:.9},\n",
            "  \"frozen_pool1_secs\": {:.9},\n",
            "  \"frozen_pool4_secs\": {:.9},\n",
            "  \"frozen_pool8_secs\": {:.9},\n",
            "  \"sharded_seq_secs\": {:.9},\n",
            "  \"sharded_pool8_secs\": {:.9},\n",
            "  \"frozen_seq_qps\": {:.1},\n",
            "  \"frozen_pool4_qps\": {:.1},\n",
            "  \"frozen_pool8_qps\": {:.1},\n",
            "  \"sharded_pool8_qps\": {:.1},\n",
            "  \"pool4_speedup\": {:.3},\n",
            "  \"pool8_speedup\": {:.3}\n",
            "}}\n"
        ),
        queries.len(),
        frozen.node_count(),
        sharded.shard_count(),
        cores,
        seq,
        p1,
        p4,
        p8,
        sh_seq,
        sh_p8,
        n / seq,
        n / p4,
        n / p8,
        n / sh_p8,
        seq / p4,
        seq / p8,
    );
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("wrote BENCH_serve.json:\n{json}"),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}\n{json}"),
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
