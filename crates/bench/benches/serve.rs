//! Serving-engine throughput: the same PrivTree release answering
//! 10,000-query workloads through every read engine — the plain frozen
//! traversal (single-threaded and pool-chunked), the sharded re-layout,
//! and the grid-routed accelerator (summed-area interior + cell-anchored
//! boundary shell, with and without Morton batch reordering). Verifies
//! the equality contracts between configurations and writes a
//! machine-readable summary to `BENCH_serve.json` (including the
//! machine's core count — pool speedups are bounded by physical
//! parallelism; the grid-routed speedup is algorithmic, so it must show
//! even on one core). `cargo bench --bench serve -- --test` (or
//! `PRIVTREE_BENCH_SMOKE=1`) runs a quick smoke configuration and skips
//! the JSON artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use privtree_datagen::spatial::gowalla_like;
use privtree_datagen::workload::{range_queries, QuerySize};
use privtree_dp::budget::Epsilon;
use privtree_dp::rng::seeded;
use privtree_runtime::WorkerPool;
use privtree_spatial::geom::Rect;
use privtree_spatial::quadtree::SplitConfig;
use privtree_spatial::sharded::ShardedSynopsis;
use privtree_spatial::synopsis::privtree_synopsis;
use privtree_spatial::{FrozenSynopsis, GridRoutedSynopsis};
use std::hint::black_box;
use std::time::Instant;

fn best_secs(samples: usize, mut f: impl FnMut() -> Vec<f64>) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn assert_bits_equal(label: &str, reference: &[f64], got: &[f64]) {
    assert_eq!(reference.len(), got.len(), "{label}");
    for (a, b) in reference.iter().zip(got) {
        assert_eq!(a.to_bits(), b.to_bits(), "{label} diverged");
    }
}

fn bench_serve(c: &mut Criterion) {
    let smoke = criterion::test_mode() || std::env::var_os("PRIVTREE_BENCH_SMOKE").is_some();
    let (points, per_workload, samples) = if smoke {
        (20_000, 500, 2)
    } else {
        (100_000, 10_000, 15)
    };

    let data = gowalla_like(points, 1);
    let domain = Rect::unit(2);
    let eps = Epsilon::new(1.0).unwrap();

    let frozen: FrozenSynopsis =
        privtree_synopsis(&data, domain, SplitConfig::full(2), eps, &mut seeded(2))
            .unwrap()
            .freeze();
    let sharded = ShardedSynopsis::from_frozen(&frozen, 2);

    // PRIVTREE_GRID_BINS=<n> sweeps the resolution; default heuristic otherwise
    let bins_override = std::env::var("PRIVTREE_GRID_BINS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    let grid_build_start = Instant::now();
    let grid = match bins_override {
        Some(b) => GridRoutedSynopsis::with_bins(frozen.clone(), &[b, b]).unwrap(),
        None => GridRoutedSynopsis::build(frozen.clone()).unwrap(),
    };
    let grid_build_secs = grid_build_start.elapsed().as_secs_f64();

    let pool1 = WorkerPool::new(1);
    let pool4 = WorkerPool::new(4);
    let pool8 = WorkerPool::new(8);

    // the contracts first, on the medium workload: every frozen/sharded
    // configuration returns identical bits; grid-routed matches the plain
    // traversal numerically and is itself bit-stable across its batch paths
    let medium = range_queries(&domain, QuerySize::Medium, per_workload, 7);
    let reference = frozen.answer_batch_sequential(&medium);
    for (label, got) in [
        (
            "frozen_pool1",
            frozen.answer_batch_with_pool(&medium, &pool1),
        ),
        (
            "frozen_pool4",
            frozen.answer_batch_with_pool(&medium, &pool4),
        ),
        (
            "frozen_pool8",
            frozen.answer_batch_with_pool(&medium, &pool8),
        ),
        ("sharded_seq", sharded.answer_batch_sequential(&medium)),
        (
            "sharded_pool8",
            sharded.answer_batch_with_pool(&medium, &pool8),
        ),
    ] {
        assert_bits_equal(label, &reference, &got);
    }
    let grid_medium = grid.answer_batch_sequential(&medium);
    for (a, b) in reference.iter().zip(&grid_medium) {
        let tol = 1e-9 * a.abs().max(1.0);
        assert!((a - b).abs() <= tol, "grid_routed vs frozen: {a} vs {b}");
    }
    assert_bits_equal(
        "grid_morton",
        &grid_medium,
        &grid.answer_batch_morton(&medium),
    );
    assert_bits_equal(
        "grid_pool8",
        &grid_medium,
        &grid.answer_batch_with_pool(&medium, &pool8),
    );

    c.bench_function("serve_frozen_sequential_medium", |b| {
        b.iter(|| black_box(frozen.answer_batch_sequential(&medium)))
    });
    c.bench_function("serve_grid_routed_medium", |b| {
        b.iter(|| black_box(grid.answer_batch_sequential(&medium)))
    });
    c.bench_function("serve_grid_routed_morton_medium", |b| {
        b.iter(|| black_box(grid.answer_batch_morton(&medium)))
    });
    c.bench_function("serve_frozen_pool8_medium", |b| {
        b.iter(|| black_box(frozen.answer_batch_with_pool(&medium, &pool8)))
    });
    c.bench_function("serve_sharded_pool8_medium", |b| {
        b.iter(|| black_box(sharded.answer_batch_with_pool(&medium, &pool8)))
    });

    // wall-clock summary across the paper's three workload classes
    let mut workload_json = String::new();
    let mut medium_frozen_qps = 0.0;
    let mut medium_grid_qps = 0.0;
    let mut medium_grid_morton_qps = 0.0;
    for size in QuerySize::all() {
        let queries = range_queries(&domain, size, per_workload, 7);
        let frozen_ref = frozen.answer_batch_sequential(&queries);
        let grid_got = grid.answer_batch_sequential(&queries);
        for (a, b) in frozen_ref.iter().zip(&grid_got) {
            let tol = 1e-9 * a.abs().max(1.0);
            assert!((a - b).abs() <= tol, "{}: {a} vs {b}", size.name());
        }
        let t_frozen = best_secs(samples, || frozen.answer_batch_sequential(&queries));
        let t_grid = best_secs(samples, || grid.answer_batch_sequential(&queries));
        let t_morton = best_secs(samples, || grid.answer_batch_morton(&queries));
        let n = queries.len() as f64;
        if size == QuerySize::Medium {
            medium_frozen_qps = n / t_frozen;
            medium_grid_qps = n / t_grid;
            medium_grid_morton_qps = n / t_morton;
        }
        workload_json.push_str(&format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"frozen_seq_qps\": {:.1},\n",
                "      \"grid_routed_qps\": {:.1},\n",
                "      \"grid_routed_morton_qps\": {:.1},\n",
                "      \"grid_speedup\": {:.3}\n",
                "    }}{}\n"
            ),
            size.name(),
            n / t_frozen,
            n / t_grid,
            n / t_morton,
            t_frozen / t_grid,
            if size == QuerySize::Large { "" } else { "," },
        ));
    }

    let seq = best_secs(samples, || frozen.answer_batch_sequential(&medium));
    let p4 = best_secs(samples, || frozen.answer_batch_with_pool(&medium, &pool4));
    let p8 = best_secs(samples, || frozen.answer_batch_with_pool(&medium, &pool8));
    let sh_p8 = best_secs(samples, || sharded.answer_batch_with_pool(&medium, &pool8));

    let n = medium.len() as f64;
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let bins = grid
        .grid()
        .bins()
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join("x");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"dataset\": \"gowalla_like_100k\",\n",
            "  \"queries_per_workload\": {},\n",
            "  \"nodes\": {},\n",
            "  \"shards\": {},\n",
            "  \"cores\": {},\n",
            "  \"grid_bins\": \"{}\",\n",
            "  \"grid_cells\": {},\n",
            "  \"grid_memory_bytes\": {},\n",
            "  \"grid_build_secs\": {:.6},\n",
            "  \"bit_identical\": true,\n",
            "  \"workloads\": {{\n",
            "{}",
            "  }},\n",
            "  \"frozen_seq_qps\": {:.1},\n",
            "  \"grid_routed_qps\": {:.1},\n",
            "  \"grid_routed_morton_qps\": {:.1},\n",
            "  \"grid_speedup_medium\": {:.3},\n",
            "  \"frozen_pool4_qps\": {:.1},\n",
            "  \"frozen_pool8_qps\": {:.1},\n",
            "  \"sharded_pool8_qps\": {:.1},\n",
            "  \"pool4_speedup\": {:.3},\n",
            "  \"pool8_speedup\": {:.3}\n",
            "}}\n"
        ),
        per_workload,
        frozen.node_count(),
        sharded.shard_count(),
        cores,
        bins,
        grid.grid().cells(),
        grid.grid().memory_bytes(),
        grid_build_secs,
        workload_json,
        medium_frozen_qps,
        medium_grid_qps,
        medium_grid_morton_qps,
        medium_grid_qps / medium_frozen_qps,
        n / p4,
        n / p8,
        n / sh_p8,
        seq / p4,
        seq / p8,
    );
    if smoke {
        println!("smoke mode: skipping BENCH_serve.json\n{json}");
    } else {
        match std::fs::write("BENCH_serve.json", &json) {
            Ok(()) => println!("wrote BENCH_serve.json:\n{json}"),
            Err(e) => eprintln!("could not write BENCH_serve.json: {e}\n{json}"),
        }
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
