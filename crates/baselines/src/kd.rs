//! The k-d tree method of Xiao, Xiong & Yuan \[51\] (Section 7 related
//! work): recursively split the domain at a *privately chosen median*
//! along alternating axes down to a fixed height, then release noisy leaf
//! counts. Qardaji et al. \[41\] showed it inferior to UG and AG, which is
//! why the paper benchmarks those instead; we include it to make that
//! comparison reproducible.
//!
//! Budget: ε/2 for structure (split into equal shares per level; each
//! level's median choices operate on disjoint data, so one level costs one
//! share by parallel composition), ε/2 for the leaf counts.

use privtree_core::counts::noisy_leaf_counts;
use privtree_core::tree::Tree;
use privtree_dp::budget::Epsilon;
use privtree_dp::mechanism::LaplaceMechanism;
use privtree_dp::quantile::dp_quantile;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::synopsis::SpatialSynopsis;
use rand::Rng;

/// Build a private k-d tree synopsis of the given height (number of
/// levels; height 1 is a single cell).
pub fn kd_synopsis<R: Rng + ?Sized>(
    data: &PointSet,
    domain: &Rect,
    epsilon: Epsilon,
    height: u32,
    rng: &mut R,
) -> SpatialSynopsis {
    assert!(height >= 1);
    let d = data.dims();
    let (eps_structure, eps_counts) = epsilon.split_two(0.5).expect("validated epsilon");
    let levels = height.saturating_sub(1).max(1);
    let eps_per_level = Epsilon::new(eps_structure.get() / levels as f64).expect("positive share");

    // recursive median splitting over an index permutation
    let mut perm: Vec<u32> = (0..data.len() as u32).collect();
    let mut tree = Tree::with_root(*domain);
    // queue entries: (node, segment range, axis, depth)
    let mut queue: Vec<(privtree_core::tree::NodeId, usize, usize, usize, u32)> =
        vec![(tree.root(), 0, data.len(), 0, 0)];
    // per-node point counts for the count pass, arena-aligned
    let mut node_counts: Vec<usize> = vec![data.len()];

    while let Some((node, start, end, axis, depth)) = queue.pop() {
        if depth + 1 >= height {
            continue;
        }
        let rect = *tree.payload(node);
        let lo = rect.lo()[axis];
        let hi = rect.hi()[axis];
        // private median of this node's points along `axis`
        let coords: Vec<f64> = perm[start..end]
            .iter()
            .map(|&i| data.point(i as usize)[axis])
            .collect();
        let median = if coords.is_empty() {
            0.5 * (lo + hi)
        } else {
            dp_quantile(&coords, 0.5, lo, hi, eps_per_level, rng).unwrap_or(0.5 * (lo + hi))
        };
        // degenerate medians at the boundary would create empty slivers
        let split_at = median.clamp(lo + (hi - lo) * 0.01, hi - (hi - lo) * 0.01);

        // partition the segment
        let seg = &mut perm[start..end];
        let mut left = Vec::with_capacity(seg.len());
        let mut right = Vec::with_capacity(seg.len());
        for &i in seg.iter() {
            if data.point(i as usize)[axis] < split_at {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        let mid = start + left.len();
        seg[..left.len()].copy_from_slice(&left);
        seg[left.len()..].copy_from_slice(&right);

        // child rects share the split plane
        let mut hi_vec = rect.hi().to_vec();
        hi_vec[axis] = split_at;
        let left_rect = Rect::new(rect.lo(), &hi_vec);
        let mut lo_vec = rect.lo().to_vec();
        lo_vec[axis] = split_at;
        let right_rect = Rect::new(&lo_vec, rect.hi());

        let kids = tree.add_children(node, vec![left_rect, right_rect]);
        node_counts.push(mid - start);
        node_counts.push(end - mid);
        let next_axis = (axis + 1) % d;
        queue.push((kids[0], start, mid, next_axis, depth + 1));
        queue.push((kids[1], mid, end, next_axis, depth + 1));
    }

    // leaf counts at ε/2, aggregated upward
    let mech = LaplaceMechanism::new(eps_counts, 1.0).expect("validated");
    let counts = {
        let node_counts = &node_counts;
        noisy_leaf_counts(
            &tree.map(|id, r| (*r, node_counts[id.index()])),
            &mech,
            |(_, c)| *c as f64,
            rng,
        )
    };
    SpatialSynopsis::from_parts(tree, counts.as_slice().to_vec(), "KdTree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_dp::rng::seeded;
    use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
    use rand::RngExt;

    fn clustered(n: usize, seed: u64) -> PointSet {
        let mut rng = seeded(seed);
        let mut ps = PointSet::new(2);
        for i in 0..n {
            if i % 4 == 0 {
                ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
            } else {
                ps.push(&[
                    0.8 + rng.random::<f64>() * 0.05,
                    0.1 + rng.random::<f64>() * 0.05,
                ]);
            }
        }
        ps
    }

    #[test]
    fn builds_complete_tree_of_requested_height() {
        let ps = clustered(5_000, 1);
        let syn = kd_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            6,
            &mut seeded(2),
        );
        // a height-6 complete binary tree has 2^6 − 1 = 63 nodes
        assert_eq!(syn.node_count(), 63);
        assert_eq!(syn.max_depth(), 5);
    }

    #[test]
    fn leaves_partition_the_domain() {
        let ps = clustered(2_000, 3);
        let syn = kd_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            5,
            &mut seeded(4),
        );
        let total_leaf_volume: f64 = syn
            .tree()
            .leaf_ids()
            .map(|id| syn.tree().payload(id).volume())
            .sum();
        assert!((total_leaf_volume - 1.0).abs() < 1e-9);
    }

    #[test]
    fn medians_track_the_data_at_high_epsilon() {
        let ps = clustered(20_000, 5);
        let syn = kd_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(50.0).unwrap(),
            2,
            &mut seeded(6),
        );
        // the first split is along axis 0; most mass sits at x ≈ 0.8, so
        // the private median must lie well right of center
        let root_kids: Vec<_> = syn.tree().children(syn.tree().root()).collect();
        let left = syn.tree().payload(root_kids[0]);
        assert!(
            left.hi()[0] > 0.55,
            "median split at {} should chase the cluster",
            left.hi()[0]
        );
    }

    #[test]
    fn total_near_cardinality() {
        let ps = clustered(30_000, 7);
        let syn = kd_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            7,
            &mut seeded(8),
        );
        let total = syn.answer(&RangeQuery::new(Rect::unit(2)));
        assert!((total - 30_000.0).abs() < 3_000.0, "total = {total}");
    }

    #[test]
    fn deterministic_given_seed() {
        let ps = clustered(1_000, 9);
        let a = kd_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            5,
            &mut seeded(10),
        );
        let b = kd_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            5,
            &mut seeded(10),
        );
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn four_dim_kd_tree() {
        let mut rng = seeded(11);
        let mut ps = PointSet::new(4);
        for _ in 0..4_000 {
            let p: Vec<f64> = (0..4).map(|_| rng.random::<f64>()).collect();
            ps.push(&p);
        }
        let syn = kd_synopsis(
            &ps,
            &Rect::unit(4),
            Epsilon::new(1.0).unwrap(),
            6,
            &mut seeded(12),
        );
        let total = syn.answer(&RangeQuery::new(Rect::unit(4)));
        assert!((total - 4_000.0).abs() < 2_000.0);
    }
}
