//! Dense noisy grids with fast range-sum answering.
//!
//! Every grid-based baseline (UG, Privelet, DAWA, and the per-level grids
//! of Hierarchy) releases a value per cell of a uniform grid and answers a
//! range query as: full cells contribute their value, boundary cells
//! contribute `value · |q ∩ cell| / |cell|` (the same uniform assumption
//! PrivTree's leaves use). A d-dimensional summed-area table makes the
//! interior block O(2^d); only the boundary shell is walked cell by cell.
//!
//! Answering needs a handful of per-dimension index buffers. They live in
//! a [`GridScratch`] that [`NoisyGrid::answer_batch`] allocates once and
//! reuses across the whole workload, so grid-backed baselines (UG,
//! Privelet's and DAWA's released grids, Hierarchy's levels) serve
//! batches without per-query allocation — the same treatment the frozen
//! PrivTree read path gets.

use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};

/// Reusable per-query index buffers for [`NoisyGrid::answer_rect_with`].
/// All vectors are resized to the grid's dimensionality on use and keep
/// their capacity across queries.
#[derive(Debug, Clone, Default)]
pub struct GridScratch {
    lo_c: Vec<usize>,
    hi_c: Vec<usize>,
    partial_lo: Vec<bool>,
    partial_hi: Vec<bool>,
    int_lo: Vec<usize>,
    int_hi_excl: Vec<usize>,
    coord: Vec<usize>,
}

impl GridScratch {
    /// Fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, dims: usize) {
        self.lo_c.clear();
        self.lo_c.resize(dims, 0);
        self.hi_c.clear();
        self.hi_c.resize(dims, 0);
        self.partial_lo.clear();
        self.partial_lo.resize(dims, false);
        self.partial_hi.clear();
        self.partial_hi.resize(dims, false);
        self.int_lo.clear();
        self.int_lo.resize(dims, 0);
        self.int_hi_excl.clear();
        self.int_hi_excl.resize(dims, 0);
        self.coord.clear();
        self.coord.resize(dims, 0);
    }
}

/// The exact-histogram pass engages the shared pool only for datasets at
/// least this large; below it the scan is too cheap to amortize dispatch.
#[cfg(feature = "parallel")]
const HISTOGRAM_PARALLEL_THRESHOLD: usize = 1 << 16;

/// Exact histogram of `data` on a `bins`-per-dimension grid over `domain`
/// (row-major, dimension 0 slowest). With the default `parallel` feature,
/// large datasets are scanned in chunks across the shared
/// `privtree-runtime` pool — the per-cell counts are small integers, so
/// float addition is exact in any order and the pooled result is
/// bit-identical to the sequential scan. This is construction-side only:
/// the per-cell noise draws of every grid baseline stay a sequential pass
/// in cell order, so releases are unchanged.
pub fn histogram(data: &PointSet, domain: &Rect, bins: &[usize]) -> Vec<f64> {
    #[cfg(feature = "parallel")]
    {
        let pool = privtree_runtime::global();
        if pool.workers() > 1 && data.len() >= HISTOGRAM_PARALLEL_THRESHOLD {
            return histogram_with_pool(data, domain, bins, pool);
        }
    }
    histogram_range(data, domain, bins, 0..data.len())
}

/// [`histogram`] chunked across an explicit pool: each worker scans a
/// contiguous point range into a partial histogram and the partials are
/// merged in chunk order. Bit-identical to the sequential scan for every
/// worker count (integer-valued adds are exact).
pub fn histogram_with_pool(
    data: &PointSet,
    domain: &Rect,
    bins: &[usize],
    pool: &privtree_runtime::WorkerPool,
) -> Vec<f64> {
    let ranges = privtree_runtime::chunk_ranges(data.len(), pool.workers() * 2);
    if pool.workers() <= 1 || ranges.len() <= 1 {
        return histogram_range(data, domain, bins, 0..data.len());
    }
    let partials = pool.map_vec(ranges, |r| histogram_range(data, domain, bins, r));
    let mut total = vec![0.0f64; bins.iter().product()];
    for part in partials {
        for (t, p) in total.iter_mut().zip(part) {
            *t += p;
        }
    }
    total
}

/// The single copy of the binning scan, over one point range.
fn histogram_range(
    data: &PointSet,
    domain: &Rect,
    bins: &[usize],
    range: std::ops::Range<usize>,
) -> Vec<f64> {
    let d = data.dims();
    assert_eq!(bins.len(), d);
    let total: usize = bins.iter().product();
    let mut hist = vec![0.0f64; total];
    for i in range {
        let p = data.point(i);
        let mut idx = 0usize;
        for k in 0..d {
            let side = domain.side(k);
            let cell = if side > 0.0 {
                (((p[k] - domain.lo()[k]) / side) * bins[k] as f64) as isize
            } else {
                0
            };
            idx = idx * bins[k] + cell.clamp(0, bins[k] as isize - 1) as usize;
        }
        hist[idx] += 1.0;
    }
    hist
}

/// A released per-cell grid of (noisy) values with a summed-area table.
#[derive(Debug, Clone)]
pub struct NoisyGrid {
    domain: Rect,
    bins: Vec<usize>,
    values: Vec<f64>,
    /// padded inclusive prefix sums: `sat[i1..id]` = Σ of values over cells
    /// with coordinate vector < (i1..id); shape is (bins[k]+1) per dim
    sat: Vec<f64>,
    sat_strides: Vec<usize>,
    label: &'static str,
}

impl NoisyGrid {
    /// Wrap released cell values (row-major, dimension 0 slowest).
    pub fn new(domain: Rect, bins: Vec<usize>, values: Vec<f64>, label: &'static str) -> Self {
        let d = bins.len();
        assert_eq!(domain.dims(), d);
        let total: usize = bins.iter().product();
        assert_eq!(values.len(), total);

        // padded SAT of shape (bins[k]+1)
        let sat_shape: Vec<usize> = bins.iter().map(|b| b + 1).collect();
        let mut sat_strides = vec![1usize; d];
        for k in (0..d.saturating_sub(1)).rev() {
            sat_strides[k] = sat_strides[k + 1] * sat_shape[k + 1];
        }
        let sat_total: usize = sat_shape.iter().product();
        let mut sat = vec![0.0f64; sat_total];

        // place values at offset +1 in every dimension
        let mut val_strides = vec![1usize; d];
        for k in (0..d.saturating_sub(1)).rev() {
            val_strides[k] = val_strides[k + 1] * bins[k + 1];
        }
        let mut coord = vec![0usize; d];
        for (i, v) in values.iter().enumerate() {
            let mut rem = i;
            for k in 0..d {
                coord[k] = rem / val_strides[k];
                rem %= val_strides[k];
            }
            let off: usize = (0..d).map(|k| (coord[k] + 1) * sat_strides[k]).sum();
            sat[off] = *v;
        }
        // cumulative sum along each dimension
        for k in 0..d {
            // iterate all indices; add predecessor along dim k
            let stride = sat_strides[k];
            let dim_len = sat_shape[k];
            // walk the array in blocks where dim k is the varying index
            let outer: usize = sat_shape[..k].iter().product();
            let inner: usize = sat_shape[k + 1..].iter().product();
            for o in 0..outer {
                for i in 1..dim_len {
                    let base = o * stride * dim_len + i * stride;
                    let prev = base - stride;
                    for j in 0..inner {
                        sat[base + j] += sat[prev + j];
                    }
                }
            }
        }
        Self {
            domain,
            bins,
            values,
            sat,
            sat_strides,
            label,
        }
    }

    /// The grid's domain.
    pub fn domain(&self) -> &Rect {
        &self.domain
    }

    /// Bins per dimension.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Released cell values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Override the display label.
    pub fn with_label(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }

    fn dims(&self) -> usize {
        self.bins.len()
    }

    #[inline]
    fn value_at(&self, coord: &[usize]) -> f64 {
        let idx = coord
            .iter()
            .zip(&self.bins)
            .fold(0usize, |acc, (c, b)| acc * b + c);
        self.values[idx]
    }

    /// Sum of values over the cell block `[a, b)` (per-dimension cell
    /// index ranges) via the SAT.
    fn block_sum(&self, a: &[usize], b: &[usize]) -> f64 {
        let d = self.dims();
        debug_assert!((0..d).all(|k| a[k] <= b[k] && b[k] <= self.bins[k]));
        let mut total = 0.0;
        for mask in 0..(1usize << d) {
            let mut off = 0usize;
            let mut sign = 1.0;
            for k in 0..d {
                let idx = if (mask >> k) & 1 == 1 {
                    sign = -sign;
                    a[k]
                } else {
                    b[k]
                };
                off += idx * self.sat_strides[k];
            }
            total += sign * self.sat[off];
        }
        total
    }

    /// Geometry of cell `coord`.
    fn cell_rect(&self, coord: &[usize]) -> Rect {
        let d = self.dims();
        let mut lo = vec![0.0; d];
        let mut hi = vec![0.0; d];
        for k in 0..d {
            let w = self.domain.side(k) / self.bins[k] as f64;
            lo[k] = self.domain.lo()[k] + w * coord[k] as f64;
            hi[k] = self.domain.lo()[k] + w * (coord[k] + 1) as f64;
        }
        Rect::new(&lo, &hi)
    }

    /// Answer a range query: SAT over fully covered cells plus fractional
    /// contributions from the boundary shell.
    pub fn answer_rect(&self, q: &Rect) -> f64 {
        self.answer_rect_with(q, &mut GridScratch::new())
    }

    /// [`NoisyGrid::answer_rect`] with caller-provided scratch, so a
    /// workload reuses the boundary-walk buffers across queries (see
    /// [`RangeCountSynopsis::answer_batch`] on this type).
    pub fn answer_rect_with(&self, q: &Rect, s: &mut GridScratch) -> f64 {
        let d = self.dims();
        s.reset(d);
        // overlapping cell index range [lo_c[k], hi_c[k]] inclusive, and
        // whether the low/high extreme cells are only partially covered
        let GridScratch {
            lo_c,
            hi_c,
            partial_lo,
            partial_hi,
            int_lo,
            int_hi_excl,
            coord,
        } = s;
        for k in 0..d {
            let side = self.domain.side(k);
            if side <= 0.0 {
                return 0.0;
            }
            let w = side / self.bins[k] as f64;
            let rel_lo = (q.lo()[k] - self.domain.lo()[k]) / w;
            let rel_hi = (q.hi()[k] - self.domain.lo()[k]) / w;
            if rel_hi <= 0.0 || rel_lo >= self.bins[k] as f64 || rel_lo >= rel_hi {
                return 0.0;
            }
            let a = rel_lo.floor().max(0.0) as usize;
            let b = (rel_hi.ceil() as usize).min(self.bins[k]) - 1;
            lo_c[k] = a.min(self.bins[k] - 1);
            hi_c[k] = b;
            // the extreme cells are partial iff the query edge cuts them
            partial_lo[k] = rel_lo > lo_c[k] as f64 && rel_lo > 0.0;
            partial_hi[k] = rel_hi < (hi_c[k] + 1) as f64 && rel_hi < self.bins[k] as f64;
        }

        // interior block (cells fully covered along every dimension)
        let mut interior_nonempty = true;
        for k in 0..d {
            int_lo[k] = lo_c[k] + partial_lo[k] as usize;
            let hi_excl = hi_c[k] + 1 - partial_hi[k] as usize;
            if hi_excl <= int_lo[k] {
                interior_nonempty = false;
                int_hi_excl[k] = int_lo[k];
            } else {
                int_hi_excl[k] = hi_excl;
            }
        }
        let mut total = if interior_nonempty {
            self.block_sum(int_lo, int_hi_excl)
        } else {
            0.0
        };

        // boundary shell: partition by the first dimension where the cell
        // sits at a partial edge; earlier dimensions stay interior, later
        // dimensions roam the full overlap range.
        for k in 0..d {
            let mut edges = [0usize; 2];
            let mut n_edges = 0;
            if partial_lo[k] {
                edges[n_edges] = lo_c[k];
                n_edges += 1;
            }
            if partial_hi[k] && (hi_c[k] != lo_c[k] || !partial_lo[k]) {
                edges[n_edges] = hi_c[k];
                n_edges += 1;
            }
            for &e in &edges[..n_edges] {
                coord[k] = e;
                total += self.boundary_walk(q, k, 0, coord, int_lo, int_hi_excl, lo_c, hi_c);
            }
        }
        total
    }

    /// Recursive odometer over `dims != k`: dims before `fixed` iterate
    /// interior ranges, dims after iterate the full overlap range.
    #[allow(clippy::too_many_arguments)]
    fn boundary_walk(
        &self,
        q: &Rect,
        fixed: usize,
        dim: usize,
        coord: &mut [usize],
        int_lo: &[usize],
        int_hi_excl: &[usize],
        lo_c: &[usize],
        hi_c: &[usize],
    ) -> f64 {
        let d = self.dims();
        if dim == d {
            let cell = self.cell_rect(coord);
            let frac = cell.overlap_fraction(q);
            return self.value_at(coord) * frac;
        }
        if dim == fixed {
            return self.boundary_walk(q, fixed, dim + 1, coord, int_lo, int_hi_excl, lo_c, hi_c);
        }
        let (a, b_excl) = if dim < fixed {
            (int_lo[dim], int_hi_excl[dim])
        } else {
            (lo_c[dim], hi_c[dim] + 1)
        };
        let mut total = 0.0;
        for i in a..b_excl {
            coord[dim] = i;
            total += self.boundary_walk(q, fixed, dim + 1, coord, int_lo, int_hi_excl, lo_c, hi_c);
        }
        total
    }
}

impl RangeCountSynopsis for NoisyGrid {
    fn answer(&self, q: &RangeQuery) -> f64 {
        self.answer_rect(&q.rect)
    }

    /// One [`GridScratch`] serves the whole workload: no per-query
    /// allocation (the trait default would re-allocate the boundary-walk
    /// buffers on every call).
    fn answer_batch(&self, queries: &[RangeQuery]) -> Vec<f64> {
        let mut scratch = GridScratch::new();
        queries
            .iter()
            .map(|q| self.answer_rect_with(&q.rect, &mut scratch))
            .collect()
    }

    fn label(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = privtree_dp::rng::seeded(seed);
        let mut ps = PointSet::new(d);
        for _ in 0..n {
            let p: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
            ps.push(&p);
        }
        ps
    }

    #[test]
    fn histogram_totals_match() {
        let ps = random_points(1000, 2, 1);
        let h = histogram(&ps, &Rect::unit(2), &[8, 8]);
        assert_eq!(h.len(), 64);
        assert_eq!(h.iter().sum::<f64>(), 1000.0);
    }

    #[test]
    fn pooled_histogram_is_bit_identical_for_every_worker_count() {
        let ps = random_points(30_000, 2, 11);
        let bins = [16usize, 16];
        let reference = histogram(&ps, &Rect::unit(2), &bins);
        for workers in [1usize, 2, 4, 8] {
            let pool = privtree_runtime::WorkerPool::new(workers);
            let pooled = histogram_with_pool(&ps, &Rect::unit(2), &bins, &pool);
            assert_eq!(pooled.len(), reference.len());
            for (a, b) in reference.iter().zip(&pooled) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers = {workers}");
            }
        }
    }

    #[test]
    fn sat_block_sums_match_naive() {
        let ps = random_points(500, 2, 2);
        let bins = vec![7usize, 5];
        let h = histogram(&ps, &Rect::unit(2), &bins);
        let g = NoisyGrid::new(Rect::unit(2), bins.clone(), h.clone(), "test");
        for (a0, a1, b0, b1) in [(0, 0, 7, 5), (1, 2, 4, 4), (3, 0, 7, 1), (2, 2, 3, 3)] {
            let naive: f64 = (a0..b0)
                .flat_map(|i| (a1..b1).map(move |j| (i, j)))
                .map(|(i, j)| h[i * bins[1] + j])
                .sum();
            let fast = g.block_sum(&[a0, a1], &[b0, b1]);
            assert!(
                (naive - fast).abs() < 1e-9,
                "block ({a0},{a1})..({b0},{b1})"
            );
        }
    }

    /// Grid answers on an exact histogram must match brute-force counts
    /// for cell-aligned queries, and the fractional rule for others.
    #[test]
    fn aligned_queries_are_exact() {
        let ps = random_points(2000, 2, 3);
        let bins = vec![16usize, 16];
        let h = histogram(&ps, &Rect::unit(2), &bins);
        let g = NoisyGrid::new(Rect::unit(2), bins, h, "test");
        for (lo, hi) in [
            ([0.0, 0.0], [1.0, 1.0]),
            ([0.25, 0.5], [0.75, 1.0]),
            ([0.0625, 0.125], [0.5, 0.9375]),
        ] {
            let q = Rect::new(&lo, &hi);
            let truth = ps.count_in(&q) as f64;
            let est = g.answer_rect(&q);
            assert!((est - truth).abs() < 1e-9, "query {q}: {est} vs {truth}");
        }
    }

    #[test]
    fn fractional_boundary_matches_uniform_rule() {
        // single cell grid with value 10; query covering 30% of it
        let g = NoisyGrid::new(Rect::unit(2), vec![1, 1], vec![10.0], "test");
        let q = Rect::new(&[0.0, 0.0], &[0.6, 0.5]);
        assert!((g.answer_rect(&q) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unaligned_queries_match_naive_fractional_sum() {
        let ps = random_points(3000, 2, 4);
        let bins = vec![13usize, 9]; // deliberately non-dyadic
        let h = histogram(&ps, &Rect::unit(2), &bins);
        let g = NoisyGrid::new(Rect::unit(2), bins.clone(), h.clone(), "test");
        let mut rng = privtree_dp::rng::seeded(5);
        for _ in 0..100 {
            let a: f64 = rng.random();
            let b: f64 = rng.random();
            let c: f64 = rng.random();
            let d: f64 = rng.random();
            let q = Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]);
            // naive fractional sum over all cells
            let mut naive = 0.0;
            for i in 0..bins[0] {
                for j in 0..bins[1] {
                    let cell = g.cell_rect(&[i, j]);
                    naive += h[i * bins[1] + j] * cell.overlap_fraction(&q);
                }
            }
            let fast = g.answer_rect(&q);
            assert!(
                (naive - fast).abs() < 1e-6,
                "query {q}: fast {fast} vs naive {naive}"
            );
        }
    }

    #[test]
    fn unaligned_queries_match_naive_4d() {
        let ps = random_points(2000, 4, 6);
        let bins = vec![4usize, 3, 5, 4];
        let h = histogram(&ps, &Rect::unit(4), &bins);
        let g = NoisyGrid::new(Rect::unit(4), bins.clone(), h.clone(), "test");
        let mut rng = privtree_dp::rng::seeded(7);
        for _ in 0..40 {
            let mut lo = Vec::new();
            let mut hi = Vec::new();
            for _ in 0..4 {
                let a: f64 = rng.random();
                let b: f64 = rng.random();
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            let q = Rect::new(&lo, &hi);
            let mut naive = 0.0;
            let mut coord = [0usize; 4];
            for i0 in 0..bins[0] {
                for i1 in 0..bins[1] {
                    for i2 in 0..bins[2] {
                        for i3 in 0..bins[3] {
                            coord = [i0, i1, i2, i3];
                            let cell = g.cell_rect(&coord);
                            naive += g.value_at(&coord) * cell.overlap_fraction(&q);
                        }
                    }
                }
            }
            let _ = coord;
            let fast = g.answer_rect(&q);
            assert!(
                (naive - fast).abs() < 1e-6,
                "query {q}: fast {fast} vs naive {naive}"
            );
        }
    }

    #[test]
    fn answer_batch_scratch_reuse_matches_answer_bitwise() {
        use privtree_spatial::query::RangeQuery;
        let ps = random_points(2000, 2, 9);
        let bins = vec![11usize, 13];
        let h = histogram(&ps, &Rect::unit(2), &bins);
        let g = NoisyGrid::new(Rect::unit(2), bins, h, "test");
        let mut rng = privtree_dp::rng::seeded(10);
        let queries: Vec<RangeQuery> = (0..200)
            .map(|_| {
                let a: f64 = rng.random();
                let b: f64 = rng.random();
                let c: f64 = rng.random();
                let d: f64 = rng.random();
                RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]))
            })
            .collect();
        let batch = g.answer_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(g.answer(q).to_bits(), got.to_bits());
        }
    }

    #[test]
    fn query_outside_domain_is_zero() {
        let g = NoisyGrid::new(Rect::unit(2), vec![2, 2], vec![1.0; 4], "test");
        assert_eq!(g.answer_rect(&Rect::new(&[2.0, 2.0], &[3.0, 3.0])), 0.0);
    }

    #[test]
    fn query_clipped_to_domain() {
        // value 4 spread over the unit square; a query covering the whole
        // domain plus slack outside must return the full total
        let g = NoisyGrid::new(Rect::unit(2), vec![2, 2], vec![1.0; 4], "test");
        let q = Rect::new(&[-1.0, -1.0], &[2.0, 2.0]);
        assert!((g.answer_rect(&q) - 4.0).abs() < 1e-12);
    }
}
