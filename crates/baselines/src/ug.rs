//! UG — Uniform Grid \[41, 42, 48\].
//!
//! "UG partitions the data domain into m^d grid cells of equal size, and
//! releases a noisy count for each cell, with m = (nε/10)^{2/(d+2)}."
//!
//! Appendix C sweeps the total cell count by a factor `r`, setting the
//! bins per dimension to `⌈r^{1/d}·m⌉` (Figure 9).

use privtree_dp::budget::Epsilon;
use privtree_dp::mechanism::LaplaceMechanism;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use rand::Rng;

use crate::grid::{histogram, NoisyGrid};

/// Cap on total cells so a mis-set `r` cannot exhaust memory.
const MAX_TOTAL_CELLS: usize = 1 << 22;

/// The paper's per-dimension granularity `m = (nε/10)^{2/(d+2)}`.
pub fn ug_bins_per_dim(n: usize, epsilon: f64, dims: usize) -> f64 {
    ((n as f64 * epsilon) / 10.0)
        .max(1.0)
        .powf(2.0 / (dims as f64 + 2.0))
}

/// Build a UG synopsis with granularity scale `r` (`r = 1.0` is the
/// recommended setting).
pub fn ug_synopsis<R: Rng + ?Sized>(
    data: &PointSet,
    domain: &Rect,
    epsilon: Epsilon,
    r: f64,
    rng: &mut R,
) -> NoisyGrid {
    let d = data.dims();
    let m = ug_bins_per_dim(data.len(), epsilon.get(), d);
    let mut per_dim = ((r.powf(1.0 / d as f64) * m).ceil() as usize).max(1);
    while per_dim.pow(d as u32) > MAX_TOTAL_CELLS && per_dim > 1 {
        per_dim /= 2;
    }
    let bins = vec![per_dim; d];
    let mut values = histogram(data, domain, &bins);
    let mech = LaplaceMechanism::new(epsilon, 1.0).expect("validated epsilon");
    for v in &mut values {
        *v = mech.randomize(*v, rng);
    }
    NoisyGrid::new(*domain, bins, values, "UG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_dp::rng::seeded;
    use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
    use rand::RngExt;

    fn uniform_points(n: usize, seed: u64) -> PointSet {
        let mut rng = seeded(seed);
        let mut ps = PointSet::new(2);
        for _ in 0..n {
            ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
        }
        ps
    }

    #[test]
    fn granularity_formula() {
        // n = 100k, ε = 1, d = 2: m = (10,000)^(1/2) = 100
        let m = ug_bins_per_dim(100_000, 1.0, 2);
        assert!((m - 100.0).abs() < 1e-9);
        // d = 4: m = 10,000^(1/3) ≈ 21.54
        let m4 = ug_bins_per_dim(100_000, 1.0, 4);
        assert!((m4 - 10_000.0f64.powf(1.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn granularity_grows_with_epsilon_and_n() {
        assert!(ug_bins_per_dim(100_000, 1.6, 2) > ug_bins_per_dim(100_000, 0.05, 2));
        assert!(ug_bins_per_dim(1_000_000, 1.0, 2) > ug_bins_per_dim(10_000, 1.0, 2));
    }

    #[test]
    fn synopsis_total_near_cardinality() {
        let ps = uniform_points(50_000, 1);
        let g = ug_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            1.0,
            &mut seeded(2),
        );
        let total = g.answer(&RangeQuery::new(Rect::unit(2)));
        assert!((total - 50_000.0).abs() < 2_000.0, "total = {total}");
    }

    #[test]
    fn r_scales_cell_count() {
        let ps = uniform_points(50_000, 3);
        let e = Epsilon::new(0.4).unwrap();
        let g1 = ug_synopsis(&ps, &Rect::unit(2), e, 1.0, &mut seeded(4));
        let g9 = ug_synopsis(&ps, &Rect::unit(2), e, 9.0, &mut seeded(4));
        let c1: usize = g1.bins().iter().product();
        let c9: usize = g9.bins().iter().product();
        assert!(c9 > 6 * c1, "r=9 cells {c9} vs r=1 cells {c1}");
    }

    #[test]
    fn reasonable_accuracy_on_uniform_data() {
        let ps = uniform_points(100_000, 5);
        let g = ug_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            1.0,
            &mut seeded(6),
        );
        let q = Rect::new(&[0.2, 0.2], &[0.5, 0.6]);
        let truth = ps.count_in(&q) as f64;
        let est = g.answer(&RangeQuery::new(q));
        assert!(
            (est - truth).abs() / truth < 0.05,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn tiny_epsilon_does_not_blow_memory() {
        let ps = uniform_points(1000, 7);
        let g = ug_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(0.05).unwrap(),
            9.0,
            &mut seeded(8),
        );
        assert!(g.bins().iter().product::<usize>() <= super::MAX_TOTAL_CELLS);
        assert!(g.bins()[0] >= 1);
    }
}
