//! AG — Adaptive Grid \[41\], two-dimensional data only.
//!
//! "AG … first employs a coarsened version of UG to produce a set of grid
//! cells; after that, for each cell whose noisy count is above a
//! threshold, AG further splits it into smaller cells and releases their
//! noisy counts."
//!
//! We follow Qardaji et al.'s recommended parameterization: a coarse
//! m1 × m1 grid with `m1 = max(10, ⌈(1/4)·√(nε/10)⌉)`, budget split
//! α = 0.5, and per-cell second-level granularity
//! `m2 = ⌈√(N′·(1−α)ε / 5)⌉` driven by the cell's noisy coarse count N′.
//! Figure 10 sweeps both granularities by a common factor `r`.

use privtree_dp::budget::Epsilon;
use privtree_dp::mechanism::LaplaceMechanism;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use rand::Rng;

use crate::grid::histogram;

/// The AG synopsis: a coarse grid whose cells each carry their own
/// second-level sub-grid of noisy counts.
#[derive(Debug, Clone)]
pub struct AgSynopsis {
    domain: Rect,
    m1: usize,
    /// per coarse cell: sub-grid resolution and its noisy counts
    cells: Vec<SubGrid>,
}

#[derive(Debug, Clone)]
struct SubGrid {
    rect: Rect,
    m2: usize,
    values: Vec<f64>,
    /// Sum of `values`, cached at build time: fully-covered coarse cells
    /// are the common case on large queries, and workloads should not
    /// re-reduce m2×m2 values per query per cell.
    total: f64,
}

/// Build an AG synopsis (panics unless the data is 2-d, matching the
/// paper: "AG is only applicable on two-dimensional data").
pub fn ag_synopsis<R: Rng + ?Sized>(
    data: &PointSet,
    domain: &Rect,
    epsilon: Epsilon,
    r: f64,
    rng: &mut R,
) -> AgSynopsis {
    assert_eq!(data.dims(), 2, "AG is defined for two-dimensional data");
    let n = data.len();
    let eps = epsilon.get();
    let alpha = 0.5;
    let scale = r.sqrt(); // r multiplies the *cell count*, √r the side

    let m1_base = ((n as f64 * eps / 10.0).sqrt() / 4.0).ceil().max(10.0);
    let m1 = ((m1_base * scale).ceil() as usize).clamp(1, 1024);

    // level-1 exact histogram + noise at α·ε
    let bins = vec![m1, m1];
    let level1 = histogram(data, domain, &bins);
    let mech1 = LaplaceMechanism::new(Epsilon::new(eps * alpha).unwrap(), 1.0).unwrap();

    // per-cell adaptive refinement at (1−α)·ε
    let mech2 = LaplaceMechanism::new(Epsilon::new(eps * (1.0 - alpha)).unwrap(), 1.0).unwrap();
    let w0 = domain.side(0) / m1 as f64;
    let w1 = domain.side(1) / m1 as f64;

    // bucket the points once per coarse cell for the refinement pass
    let mut cell_points: Vec<Vec<u32>> = vec![Vec::new(); m1 * m1];
    for (i, p) in data.iter().enumerate() {
        let c0 = (((p[0] - domain.lo()[0]) / w0) as isize).clamp(0, m1 as isize - 1) as usize;
        let c1 = (((p[1] - domain.lo()[1]) / w1) as isize).clamp(0, m1 as isize - 1) as usize;
        cell_points[c0 * m1 + c1].push(i as u32);
    }

    let mut cells = Vec::with_capacity(m1 * m1);
    for c0 in 0..m1 {
        for c1 in 0..m1 {
            let idx = c0 * m1 + c1;
            let noisy1 = mech1.randomize(level1[idx], rng);
            let rect = Rect::new(
                &[
                    domain.lo()[0] + w0 * c0 as f64,
                    domain.lo()[1] + w1 * c1 as f64,
                ],
                &[
                    domain.lo()[0] + w0 * (c0 + 1) as f64,
                    domain.lo()[1] + w1 * (c1 + 1) as f64,
                ],
            );
            let m2_base = (noisy1.max(0.0) * (1.0 - alpha) * eps / 5.0).sqrt().ceil();
            let m2 = ((m2_base * scale).ceil() as usize).clamp(1, 256);
            // sub-histogram of this cell's points
            let mut values = vec![0.0f64; m2 * m2];
            for &pid in &cell_points[idx] {
                let p = data.point(pid as usize);
                let s0 = (((p[0] - rect.lo()[0]) / rect.side(0) * m2 as f64) as isize)
                    .clamp(0, m2 as isize - 1) as usize;
                let s1 = (((p[1] - rect.lo()[1]) / rect.side(1) * m2 as f64) as isize)
                    .clamp(0, m2 as isize - 1) as usize;
                values[s0 * m2 + s1] += 1.0;
            }
            for v in &mut values {
                *v = mech2.randomize(*v, rng);
            }
            let total = values.iter().sum();
            cells.push(SubGrid {
                rect,
                m2,
                values,
                total,
            });
        }
    }
    AgSynopsis {
        domain: *domain,
        m1,
        cells,
    }
}

impl AgSynopsis {
    /// The data domain this synopsis covers.
    pub fn domain(&self) -> &Rect {
        &self.domain
    }

    /// Coarse grid resolution m1.
    pub fn m1(&self) -> usize {
        self.m1
    }

    /// Total number of released leaf cells.
    pub fn leaf_cell_count(&self) -> usize {
        self.cells.iter().map(|c| c.values.len()).sum()
    }

    fn answer_rect(&self, q: &Rect) -> f64 {
        let mut total = 0.0;
        for cell in &self.cells {
            if !cell.rect.intersects(q) {
                continue;
            }
            if q.contains_rect(&cell.rect) {
                total += cell.total;
                continue;
            }
            // walk the sub-grid
            let m2 = cell.m2;
            let w0 = cell.rect.side(0) / m2 as f64;
            let w1 = cell.rect.side(1) / m2 as f64;
            for s0 in 0..m2 {
                for s1 in 0..m2 {
                    let sub = Rect::new(
                        &[
                            cell.rect.lo()[0] + w0 * s0 as f64,
                            cell.rect.lo()[1] + w1 * s1 as f64,
                        ],
                        &[
                            cell.rect.lo()[0] + w0 * (s0 + 1) as f64,
                            cell.rect.lo()[1] + w1 * (s1 + 1) as f64,
                        ],
                    );
                    let frac = sub.overlap_fraction(q);
                    if frac > 0.0 {
                        total += cell.values[s0 * m2 + s1] * frac;
                    }
                }
            }
        }
        total
    }
}

impl RangeCountSynopsis for AgSynopsis {
    fn answer(&self, q: &RangeQuery) -> f64 {
        self.answer_rect(&q.rect)
    }

    fn label(&self) -> &'static str {
        "AG"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_dp::rng::seeded;
    use rand::RngExt;

    fn skewed_points(n: usize, seed: u64) -> PointSet {
        let mut rng = seeded(seed);
        let mut ps = PointSet::new(2);
        for i in 0..n {
            if i % 5 == 0 {
                ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
            } else {
                ps.push(&[
                    0.1 + rng.random::<f64>() * 0.05,
                    0.7 + rng.random::<f64>() * 0.05,
                ]);
            }
        }
        ps
    }

    #[test]
    fn dense_cells_get_finer_subgrids() {
        let ps = skewed_points(100_000, 1);
        let syn = ag_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            1.0,
            &mut seeded(2),
        );
        // sub-grid resolution in the dense corner must exceed that in an
        // empty corner
        let dense = syn
            .cells
            .iter()
            .find(|c| c.rect.contains_point(&[0.12, 0.72]))
            .unwrap();
        let sparse = syn
            .cells
            .iter()
            .find(|c| c.rect.contains_point(&[0.95, 0.05]))
            .unwrap();
        assert!(
            dense.m2 > sparse.m2,
            "dense m2 {} should exceed sparse m2 {}",
            dense.m2,
            sparse.m2
        );
    }

    #[test]
    fn total_near_cardinality() {
        let ps = skewed_points(50_000, 3);
        let syn = ag_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            1.0,
            &mut seeded(4),
        );
        let total = syn.answer(&RangeQuery::new(Rect::unit(2)));
        // AG sums many independent noisy cells, so give it generous slack
        assert!((total - 50_000.0).abs() < 5_000.0, "total = {total}");
    }

    #[test]
    fn answers_are_reasonable_on_the_dense_cluster() {
        let ps = skewed_points(100_000, 5);
        let syn = ag_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            1.0,
            &mut seeded(6),
        );
        let q = Rect::new(&[0.1, 0.7], &[0.15, 0.75]);
        let truth = ps.count_in(&q) as f64;
        let est = syn.answer(&RangeQuery::new(q));
        assert!(
            (est - truth).abs() / truth < 0.25,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    #[should_panic(expected = "two-dimensional")]
    fn rejects_4d_data() {
        let ps = PointSet::from_flat(4, vec![0.1; 8]);
        ag_synopsis(
            &ps,
            &Rect::unit(4),
            Epsilon::new(1.0).unwrap(),
            1.0,
            &mut seeded(7),
        );
    }

    #[test]
    fn m1_respects_minimum_of_10() {
        let ps = skewed_points(100, 8); // tiny n → formula below 10
        let syn = ag_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(0.05).unwrap(),
            1.0,
            &mut seeded(9),
        );
        assert!(syn.m1() >= 10);
    }
}
