//! Hierarchy — the multi-level decomposition of Qardaji et al. \[42\] with
//! the constrained-inference (mean consistency) post-processing of Hay et
//! al. \[25\], which Section 3.1 lists among the heuristics used to shore up
//! Algorithm 1.
//!
//! A height-h uniform tree (root plus h−1 measured levels, per-dimension
//! fanout f, so each node has b = f^d children) releases a noisy count for
//! every non-root node with per-level budget ε/(h−1). The recommended 2-d
//! setting is h = 3 and b = 64 (f = 8), i.e. a 64×64 leaf grid; Figure 11
//! sweeps h while keeping the leaf resolution comparable.

use privtree_dp::budget::Epsilon;
use privtree_dp::mechanism::LaplaceMechanism;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
use rand::Rng;

use crate::grid::{histogram, NoisyGrid};

/// A hierarchy of noisy grids: `levels[ℓ]` holds the counts of the grid
/// with `f^(ℓ+1)` bins per dimension.
#[derive(Debug, Clone)]
pub struct HierarchySynopsis {
    domain: Rect,
    f: usize,
    dims: usize,
    levels: Vec<Vec<f64>>,
}

/// Per-dimension fanout for a height-`h` hierarchy whose leaf level has
/// roughly `leaf_per_dim` bins per dimension (the Figure 11 sweep keeps
/// the leaf resolution while varying the number of intermediate levels).
pub fn fanout_for_height(height: u32, leaf_per_dim: usize) -> usize {
    assert!(height >= 2);
    let f = (leaf_per_dim as f64)
        .powf(1.0 / (height as f64 - 1.0))
        .round() as usize;
    f.max(2)
}

/// Build the raw hierarchy: exact per-level histograms plus `Lap((h−1)/ε)`
/// noise on every measured cell.
pub fn build_hierarchy<R: Rng + ?Sized>(
    data: &PointSet,
    domain: &Rect,
    epsilon: Epsilon,
    height: u32,
    f: usize,
    rng: &mut R,
) -> HierarchySynopsis {
    assert!(height >= 2, "hierarchy needs at least two levels");
    assert!(f >= 2);
    let d = data.dims();
    let measured_levels = (height - 1) as usize;
    // each point is counted once per measured level ⇒ sensitivity h−1
    let mech = LaplaceMechanism::new(epsilon, measured_levels as f64).expect("validated");

    let mut levels = Vec::with_capacity(measured_levels);
    for l in 0..measured_levels {
        let per_dim = f.pow(l as u32 + 1);
        let bins = vec![per_dim; d];
        let mut values = histogram(data, domain, &bins);
        for v in &mut values {
            *v = mech.randomize(*v, rng);
        }
        levels.push(values);
    }
    HierarchySynopsis {
        domain: *domain,
        f,
        dims: d,
        levels,
    }
}

impl HierarchySynopsis {
    /// Number of measured levels (h − 1).
    pub fn measured_levels(&self) -> usize {
        self.levels.len()
    }

    /// Per-dimension fanout f.
    pub fn fanout_per_dim(&self) -> usize {
        self.f
    }

    fn bins_at(&self, level: usize) -> usize {
        self.f.pow(level as u32 + 1)
    }

    fn cell_rect(&self, level: usize, coord: &[usize]) -> Rect {
        let m = self.bins_at(level);
        let d = self.dims;
        let mut lo = vec![0.0; d];
        let mut hi = vec![0.0; d];
        for k in 0..d {
            let w = self.domain.side(k) / m as f64;
            lo[k] = self.domain.lo()[k] + w * coord[k] as f64;
            hi[k] = self.domain.lo()[k] + w * (coord[k] + 1) as f64;
        }
        Rect::new(&lo, &hi)
    }

    fn flat(&self, level: usize, coord: &[usize]) -> usize {
        let m = self.bins_at(level);
        coord.iter().fold(0usize, |acc, c| acc * m + c)
    }

    /// Greedy top-down answering over the raw (inconsistent) hierarchy:
    /// fully covered nodes contribute their own noisy count, partially
    /// covered leaves use the uniform assumption.
    pub fn answer_greedy(&self, q: &Rect) -> f64 {
        let d = self.dims;
        let mut total = 0.0;
        // recursion over cells of level 0 downwards
        let mut stack: Vec<(usize, Vec<usize>)> = Vec::new();
        let m0 = self.bins_at(0);
        let mut coord = vec![0usize; d];
        loop {
            // push level-0 cells lazily via odometer
            stack.push((0, coord.clone()));
            let mut k = d;
            let mut done = false;
            loop {
                if k == 0 {
                    done = true;
                    break;
                }
                k -= 1;
                if coord[k] + 1 < m0 {
                    coord[k] += 1;
                    for c in coord.iter_mut().skip(k + 1) {
                        *c = 0;
                    }
                    break;
                }
            }
            if done {
                break;
            }
        }
        while let Some((level, coord)) = stack.pop() {
            let rect = self.cell_rect(level, &coord);
            if !rect.intersects(q) {
                continue;
            }
            let value = self.levels[level][self.flat(level, &coord)];
            if q.contains_rect(&rect) {
                total += value;
            } else if level + 1 < self.levels.len() {
                // expand into the f^d children
                let mut child = vec![0usize; d];
                loop {
                    let cc: Vec<usize> = (0..d).map(|k| coord[k] * self.f + child[k]).collect();
                    stack.push((level + 1, cc));
                    let mut k = d;
                    let mut done = false;
                    loop {
                        if k == 0 {
                            done = true;
                            break;
                        }
                        k -= 1;
                        if child[k] + 1 < self.f {
                            child[k] += 1;
                            for c in child.iter_mut().skip(k + 1) {
                                *c = 0;
                            }
                            break;
                        }
                    }
                    if done {
                        break;
                    }
                }
            } else {
                total += value * rect.overlap_fraction(q);
            }
        }
        total
    }

    /// Hay et al. \[25\] mean consistency: an upward weighted-average pass
    /// followed by a downward redistribution pass. Afterwards every
    /// internal count equals the sum of its children, so the leaf level
    /// alone carries the full information; it is returned as a fast
    /// SAT-backed grid.
    pub fn into_consistent_grid(mut self) -> NoisyGrid {
        let d = self.dims;
        let b = self.f.pow(d as u32); // children per node
        let l_count = self.levels.len();

        // upward pass: z-values replace levels in place, leaves first
        for level in (0..l_count).rev() {
            let k_below = (l_count - 1 - level) as i32; // measured levels below
            if k_below == 0 {
                continue; // leaves: z = y
            }
            let bf = (b as f64).powi(k_below + 1);
            let bf_minus = (b as f64).powi(k_below);
            let w_self = (bf - bf_minus) / (bf - 1.0);
            let m = self.bins_at(level);
            let total_cells = m.pow(d as u32);
            for flat_idx in 0..total_cells {
                let coord = self.unflatten(level, flat_idx);
                let child_sum = self.child_sum(level, &coord);
                let y = self.levels[level][flat_idx];
                self.levels[level][flat_idx] = w_self * y + (1.0 - w_self) * child_sum;
            }
        }

        // downward pass: adjust children so they sum to their parent
        for level in 0..l_count.saturating_sub(1) {
            let m = self.bins_at(level);
            let total_cells = m.pow(d as u32);
            for flat_idx in 0..total_cells {
                let coord = self.unflatten(level, flat_idx);
                let parent_u = self.levels[level][flat_idx];
                let child_sum = self.child_sum(level, &coord);
                let adjust = (parent_u - child_sum) / b as f64;
                self.for_each_child(level, &coord, |levels, child_flat| {
                    levels[level + 1][child_flat] += adjust;
                });
            }
        }

        let leaf_level = l_count - 1;
        let per_dim = self.bins_at(leaf_level);
        NoisyGrid::new(
            self.domain,
            vec![per_dim; d],
            self.levels.pop().expect("at least one level"),
            "Hierarchy",
        )
    }

    fn unflatten(&self, level: usize, mut flat: usize) -> Vec<usize> {
        let m = self.bins_at(level);
        let d = self.dims;
        let mut coord = vec![0usize; d];
        for k in (0..d).rev() {
            coord[k] = flat % m;
            flat /= m;
        }
        coord
    }

    fn child_sum(&self, level: usize, coord: &[usize]) -> f64 {
        let mut sum = 0.0;
        let d = self.dims;
        let mut child = vec![0usize; d];
        loop {
            let cc: Vec<usize> = (0..d).map(|k| coord[k] * self.f + child[k]).collect();
            sum += self.levels[level + 1][self.flat(level + 1, &cc)];
            if !Self::odometer(&mut child, self.f) {
                break;
            }
        }
        sum
    }

    fn for_each_child(
        &mut self,
        level: usize,
        coord: &[usize],
        mut f: impl FnMut(&mut Vec<Vec<f64>>, usize),
    ) {
        let d = self.dims;
        let mut child = vec![0usize; d];
        loop {
            let cc: Vec<usize> = (0..d).map(|k| coord[k] * self.f + child[k]).collect();
            let flat = self.flat(level + 1, &cc);
            f(&mut self.levels, flat);
            if !Self::odometer(&mut child, self.f) {
                break;
            }
        }
    }

    fn odometer(coord: &mut [usize], base: usize) -> bool {
        for k in (0..coord.len()).rev() {
            if coord[k] + 1 < base {
                coord[k] += 1;
                for c in coord.iter_mut().skip(k + 1) {
                    *c = 0;
                }
                return true;
            }
        }
        false
    }
}

impl RangeCountSynopsis for HierarchySynopsis {
    fn answer(&self, q: &RangeQuery) -> f64 {
        self.answer_greedy(&q.rect)
    }

    fn label(&self) -> &'static str {
        "Hierarchy(raw)"
    }
}

/// The standard Hierarchy pipeline: build, apply mean consistency, return
/// the SAT-backed leaf grid.
pub fn hierarchy_synopsis<R: Rng + ?Sized>(
    data: &PointSet,
    domain: &Rect,
    epsilon: Epsilon,
    height: u32,
    leaf_per_dim: usize,
    rng: &mut R,
) -> NoisyGrid {
    let f = fanout_for_height(height, leaf_per_dim);
    build_hierarchy(data, domain, epsilon, height, f, rng).into_consistent_grid()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_dp::rng::seeded;
    use rand::RngExt;

    fn uniform_points(n: usize, seed: u64) -> PointSet {
        let mut rng = seeded(seed);
        let mut ps = PointSet::new(2);
        for _ in 0..n {
            ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
        }
        ps
    }

    #[test]
    fn fanout_heuristic() {
        assert_eq!(fanout_for_height(3, 64), 8); // 8² levels → 64 leaf bins
        assert_eq!(fanout_for_height(4, 64), 4); // 4³ = 64
        assert_eq!(fanout_for_height(7, 64), 2); // 2⁶ = 64
    }

    #[test]
    fn level_shapes() {
        let ps = uniform_points(5000, 1);
        let h = build_hierarchy(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            3,
            8,
            &mut seeded(2),
        );
        assert_eq!(h.measured_levels(), 2);
        assert_eq!(h.levels[0].len(), 64); // 8×8
        assert_eq!(h.levels[1].len(), 4096); // 64×64
    }

    #[test]
    fn consistency_makes_parents_equal_child_sums() {
        let ps = uniform_points(20_000, 3);
        let mut h = build_hierarchy(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            3,
            8,
            &mut seeded(4),
        );
        // run only the passes (clone the result grid to check level 0 too)
        let before_root_level: Vec<f64> = h.levels[0].clone();
        let d = 2;
        let grid = h.clone().into_consistent_grid();
        let _ = (before_root_level, d);
        // reconstruct level-0 sums from the leaf grid and compare with a
        // freshly consistent hierarchy's own level-0 values
        h = build_hierarchy(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            3,
            8,
            &mut seeded(4),
        );
        // consistent level-0 values: recompute via the same passes
        let q = Rect::new(&[0.0, 0.0], &[0.125, 0.125]); // exactly level-0 cell (0,0)
        let leaf_sum = grid.answer_rect(&q);
        // the consistent hierarchy must give the same answer through any
        // level — compare greedy on a consistent copy
        let consistent_leafsum_again = h.clone().into_consistent_grid().answer_rect(&q);
        assert!((leaf_sum - consistent_leafsum_again).abs() < 1e-6);
    }

    #[test]
    fn consistency_reduces_error_for_large_queries() {
        let ps = uniform_points(100_000, 5);
        let e = Epsilon::new(0.2).unwrap();
        let q = Rect::new(&[0.0, 0.0], &[0.75, 0.75]);
        let truth = ps.count_in(&q) as f64;
        let mut raw_err = 0.0;
        let mut cons_err = 0.0;
        for rep in 0..10 {
            let h = build_hierarchy(&ps, &Rect::unit(2), e, 3, 8, &mut seeded(100 + rep));
            raw_err += (h.answer_greedy(&q) - truth).abs();
            cons_err += (h.into_consistent_grid().answer_rect(&q) - truth).abs();
        }
        // consistency should not make things notably worse (it is the
        // variance-optimal combination); allow slack for sampling noise
        assert!(
            cons_err < raw_err * 1.5,
            "consistent err {cons_err} vs raw {raw_err}"
        );
    }

    #[test]
    fn greedy_answer_total() {
        let ps = uniform_points(30_000, 6);
        let h = build_hierarchy(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            3,
            8,
            &mut seeded(7),
        );
        let total = h.answer_greedy(&Rect::unit(2));
        assert!((total - 30_000.0).abs() < 3_000.0, "total = {total}");
    }

    #[test]
    fn four_dim_hierarchy_small() {
        let mut rng = seeded(8);
        let mut ps = PointSet::new(4);
        for _ in 0..5000 {
            let p: Vec<f64> = (0..4).map(|_| rng.random::<f64>()).collect();
            ps.push(&p);
        }
        let g = hierarchy_synopsis(
            &ps,
            &Rect::unit(4),
            Epsilon::new(1.0).unwrap(),
            3,
            9,
            &mut seeded(9),
        );
        let total = g.answer_rect(&Rect::unit(4));
        assert!((total - 5000.0).abs() < 2_000.0, "total = {total}");
    }
}
