//! DAWA \[30\] — the Data- And Workload-Aware mechanism, reimplemented as a
//! two-stage pipeline (see DESIGN.md §3 for the substitution notes).
//!
//! The domain is discretized into a 2^20-cell grid (Section 6.1) and
//! linearized along a Hilbert curve (2-d) or Morton curve (4-d). Then:
//!
//! * **Stage 1 (ε/2): data-aware partitioning.** Candidate buckets are the
//!   dyadic intervals of the linearized domain. The true cost of a bucket
//!   is its L1 deviation from uniformity `Σ|x_i − mean|`; each candidate's
//!   cost is perturbed with `Lap(2(K+1)/ε₁)` noise (each cell lies in
//!   exactly K+1 aligned dyadic intervals, and one tuple changes each
//!   containing interval's deviation by at most 2). A tree DP then picks
//!   the partition minimizing Σ (noisy cost + per-bucket penalty).
//! * **Stage 2 (ε/2): bucket release.** Each chosen bucket's total count
//!   receives `Lap(1/ε₂)` noise and is spread uniformly over its cells.
//!
//! The result is a full noisy grid: coarse buckets over near-uniform
//! regions (little noise, little detail lost) and fine buckets where the
//! data varies — the data-awareness that makes DAWA the closest competitor
//! to PrivTree on skewed spatial data (Figure 5).

use privtree_dp::budget::Epsilon;
use privtree_dp::laplace::Laplace;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use rand::Rng;

use crate::grid::{histogram, NoisyGrid};
use crate::hilbert::curve_order;

/// Build a DAWA synopsis on a grid of `2^cells_log2` cells
/// (`cells_log2 % dims == 0`; Section 6.1 uses 2^20).
pub fn dawa_synopsis<R: Rng + ?Sized>(
    data: &PointSet,
    domain: &Rect,
    epsilon: Epsilon,
    cells_log2: u32,
    rng: &mut R,
) -> NoisyGrid {
    let d = data.dims();
    assert_eq!(
        cells_log2 as usize % d,
        0,
        "cells_log2 must divide across dims"
    );
    let per_dim = 1usize << (cells_log2 as usize / d);
    let bins = vec![per_dim; d];
    let grid_hist = histogram(data, domain, &bins);

    // linearize along the space-filling curve
    let order = curve_order(d, per_dim);
    let linear: Vec<f64> = order.iter().map(|&idx| grid_hist[idx]).collect();

    let (eps1, eps2) = epsilon.split_two(0.5).expect("validated epsilon");
    let buckets = l1_partition(&linear, eps1.get(), eps2.get(), rng);

    // stage 2: noisy bucket totals, uniform expansion
    let noise = Laplace::centered(1.0 / eps2.get()).expect("validated");
    let mut linear_out = vec![0.0f64; linear.len()];
    for &(start, end) in &buckets {
        let total: f64 = linear[start..end].iter().sum();
        let noisy = total + noise.sample(rng);
        let share = noisy / (end - start) as f64;
        for slot in &mut linear_out[start..end] {
            *slot = share;
        }
    }

    // un-linearize back to the grid
    let mut values = vec![0.0f64; grid_hist.len()];
    for (pos, &idx) in order.iter().enumerate() {
        values[idx] = linear_out[pos];
    }
    NoisyGrid::new(*domain, bins, values, "DAWA")
}

/// Stage 1: choose a partition of `x` into dyadic buckets minimizing the
/// total noisy L1-deviation cost plus a per-bucket penalty of `1/eps2`
/// (the stage-2 noise a bucket will absorb). Returns `[start, end)`
/// bucket ranges covering the array.
pub fn l1_partition<R: Rng + ?Sized>(
    x: &[f64],
    eps1: f64,
    eps2: f64,
    rng: &mut R,
) -> Vec<(usize, usize)> {
    let m = x.len();
    assert!(m.is_power_of_two() && m >= 1);
    let k = m.trailing_zeros() as usize;
    let cost_noise = Laplace::centered(2.0 * (k as f64 + 1.0) / eps1).expect("positive scale");
    let penalty = 1.0 / eps2;

    // bottom-up DP over the dyadic tree. For each level ℓ (bucket size
    // 2^ℓ) store the best cost of covering each aligned bucket, plus the
    // decision (keep whole vs split).
    let mut best: Vec<f64> = Vec::new();
    let mut keep: Vec<Vec<bool>> = Vec::with_capacity(k + 1);

    for level in 0..=k {
        let size = 1usize << level;
        let count = m / size;
        let mut level_best = vec![0.0f64; count];
        let mut level_keep = vec![false; count];
        for b in 0..count {
            let start = b * size;
            let end = start + size;
            // true L1 deviation from the bucket mean
            let sum: f64 = x[start..end].iter().sum();
            let mean = sum / size as f64;
            let dev: f64 = x[start..end].iter().map(|v| (v - mean).abs()).sum();
            let noisy_cost = (dev + cost_noise.sample(rng)).max(0.0) + penalty;
            if level == 0 {
                level_best[b] = noisy_cost;
                level_keep[b] = true;
            } else {
                let split_cost = best[2 * b] + best[2 * b + 1];
                if noisy_cost <= split_cost {
                    level_best[b] = noisy_cost;
                    level_keep[b] = true;
                } else {
                    level_best[b] = split_cost;
                    level_keep[b] = false;
                }
            }
        }
        best = level_best;
        keep.push(level_keep);
    }

    // walk the decisions from the root
    let mut buckets = Vec::new();
    let mut stack = vec![(k, 0usize)];
    while let Some((level, b)) = stack.pop() {
        if keep[level][b] {
            let size = 1usize << level;
            buckets.push((b * size, (b + 1) * size));
        } else {
            stack.push((level - 1, 2 * b));
            stack.push((level - 1, 2 * b + 1));
        }
    }
    buckets.sort_unstable();
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_dp::rng::seeded;
    use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
    use rand::RngExt;

    #[test]
    fn partition_covers_the_array() {
        let mut rng = seeded(1);
        let x: Vec<f64> = (0..256).map(|_| rng.random::<f64>() * 10.0).collect();
        let buckets = l1_partition(&x, 1.0, 1.0, &mut rng);
        // contiguous cover with no overlap
        let mut pos = 0;
        for &(s, e) in &buckets {
            assert_eq!(s, pos);
            assert!(e > s);
            pos = e;
        }
        assert_eq!(pos, 256);
        // all buckets are dyadic and aligned
        for &(s, e) in &buckets {
            let len = e - s;
            assert!(len.is_power_of_two());
            assert_eq!(s % len, 0);
        }
    }

    #[test]
    fn uniform_data_yields_coarse_buckets() {
        let x = vec![5.0; 1024];
        let mut rng = seeded(2);
        // generous budget: costs are near-exact
        let buckets = l1_partition(&x, 50.0, 50.0, &mut rng);
        assert!(
            buckets.len() <= 4,
            "uniform data split into {} buckets",
            buckets.len()
        );
    }

    #[test]
    fn step_data_splits_at_the_step() {
        // left half 0, right half 100: a single bucket has huge deviation,
        // two half-buckets have none
        let mut x = vec![0.0; 512];
        x[256..].iter_mut().for_each(|v| *v = 100.0);
        let mut rng = seeded(3);
        let buckets = l1_partition(&x, 20.0, 20.0, &mut rng);
        assert!(buckets.len() >= 2);
        // no bucket straddles the step
        for &(s, e) in &buckets {
            assert!(e <= 256 || s >= 256, "bucket ({s},{e}) straddles the step");
        }
    }

    #[test]
    fn synopsis_total_near_cardinality() {
        let mut rng = seeded(4);
        let mut ps = PointSet::new(2);
        for _ in 0..30_000 {
            ps.push(&[rng.random::<f64>() * 0.3, rng.random::<f64>() * 0.3]);
        }
        let g = dawa_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            12,
            &mut seeded(5),
        );
        let total = g.answer(&RangeQuery::new(Rect::unit(2)));
        assert!((total - 30_000.0).abs() < 4_000.0, "total = {total}");
    }

    #[test]
    fn adapts_to_clusters() {
        // clustered data: query on the empty region should be near zero
        // because the empty region collapses into few low-count buckets
        let mut rng = seeded(6);
        let mut ps = PointSet::new(2);
        for _ in 0..50_000 {
            ps.push(&[rng.random::<f64>() * 0.1, rng.random::<f64>() * 0.1]);
        }
        let g = dawa_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            12,
            &mut seeded(7),
        );
        let empty_q = RangeQuery::new(Rect::new(&[0.5, 0.5], &[0.9, 0.9]));
        let est = g.answer(&empty_q).abs();
        assert!(est < 1500.0, "empty-region estimate {est} too large");
        let dense_q = RangeQuery::new(Rect::new(&[0.0, 0.0], &[0.1, 0.1]));
        let truth = ps.count_in(&dense_q.rect) as f64;
        let dense_est = g.answer(&dense_q);
        assert!(
            (dense_est - truth).abs() / truth < 0.2,
            "dense est {dense_est} vs {truth}"
        );
    }

    #[test]
    fn four_dim_uses_morton() {
        let mut rng = seeded(8);
        let mut ps = PointSet::new(4);
        for _ in 0..5_000 {
            let p: Vec<f64> = (0..4).map(|_| rng.random::<f64>()).collect();
            ps.push(&p);
        }
        let g = dawa_synopsis(
            &ps,
            &Rect::unit(4),
            Epsilon::new(1.0).unwrap(),
            12,
            &mut seeded(9),
        );
        assert_eq!(g.bins(), &[8, 8, 8, 8]);
        let total = g.answer(&RangeQuery::new(Rect::unit(4)));
        assert!((total - 5_000.0).abs() < 3_000.0, "total = {total}");
    }
}
