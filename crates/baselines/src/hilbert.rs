//! Space-filling curves: the 2-d Hilbert curve DAWA uses to linearize
//! spatial grids, plus a d-dimensional Morton (Z-order) fallback for the
//! 4-d datasets.

/// Map a Hilbert-curve index `h ∈ [0, side²)` to grid coordinates, for a
/// `side × side` grid with `side = 2^order`.
pub fn hilbert_d2xy(side: u64, h: u64) -> (u64, u64) {
    debug_assert!(side.is_power_of_two());
    let (mut x, mut y) = (0u64, 0u64);
    let mut t = h;
    let mut s = 1u64;
    while s < side {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        rotate(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// Map grid coordinates to the Hilbert-curve index.
pub fn hilbert_xy2d(side: u64, mut x: u64, mut y: u64) -> u64 {
    debug_assert!(side.is_power_of_two());
    let mut d = 0u64;
    let mut s = side / 2;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        rotate(s, &mut x, &mut y, rx, ry);
        s /= 2;
    }
    d
}

fn rotate(s: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
    if ry == 0 {
        if rx == 1 {
            *x = s.wrapping_sub(1).wrapping_sub(*x);
            *y = s.wrapping_sub(1).wrapping_sub(*y);
        }
        std::mem::swap(x, y);
    }
}

/// Interleave the low `bits` bits of each coordinate into a Morton code
/// (dimension 0 occupies the most significant bit of each group).
pub fn morton_encode(coords: &[u64], bits: u32) -> u64 {
    let d = coords.len();
    let mut code = 0u64;
    debug_assert!(bits as usize * d <= 64);
    for b in (0..bits).rev() {
        for (k, &c) in coords.iter().enumerate() {
            let _ = k;
            code = (code << 1) | ((c >> b) & 1);
        }
    }
    code
}

/// Invert [`morton_encode`].
pub fn morton_decode(code: u64, dims: usize, bits: u32) -> Vec<u64> {
    let mut coords = vec![0u64; dims];
    let mut shift = bits as usize * dims;
    for b in (0..bits).rev() {
        for coord in coords.iter_mut() {
            shift -= 1;
            *coord |= ((code >> shift) & 1) << b;
        }
    }
    coords
}

/// Linearize a row-major d-dim grid (equal `per_dim` bins, a power of
/// two): returns `order` such that `linear[i] = grid[order[i]]` walks the
/// grid along a Hilbert curve (d = 2) or Morton curve (d ≠ 2).
pub fn curve_order(dims: usize, per_dim: usize) -> Vec<usize> {
    assert!(per_dim.is_power_of_two());
    let total = per_dim.pow(dims as u32);
    let mut order = Vec::with_capacity(total);
    if dims == 2 {
        for h in 0..total as u64 {
            let (x, y) = hilbert_d2xy(per_dim as u64, h);
            order.push(x as usize * per_dim + y as usize);
        }
    } else {
        let bits = per_dim.trailing_zeros();
        for m in 0..total as u64 {
            let coords = morton_decode(m, dims, bits);
            let mut idx = 0usize;
            for &c in &coords {
                idx = idx * per_dim + c as usize;
            }
            order.push(idx);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_is_a_bijection() {
        let side = 32u64;
        let mut seen = vec![false; (side * side) as usize];
        for h in 0..side * side {
            let (x, y) = hilbert_d2xy(side, h);
            assert!(x < side && y < side);
            let idx = (x * side + y) as usize;
            assert!(!seen[idx], "collision at h = {h}");
            seen[idx] = true;
            assert_eq!(hilbert_xy2d(side, x, y), h, "inverse mismatch at {h}");
        }
    }

    #[test]
    fn hilbert_consecutive_cells_are_adjacent() {
        let side = 64u64;
        let mut prev = hilbert_d2xy(side, 0);
        for h in 1..side * side {
            let cur = hilbert_d2xy(side, h);
            let dist = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1);
            assert_eq!(dist, 1, "step {h} jumps by {dist}");
            prev = cur;
        }
    }

    #[test]
    fn morton_round_trip() {
        for code in 0..4096u64 {
            let coords = morton_decode(code, 4, 3);
            assert!(coords.iter().all(|c| *c < 8));
            assert_eq!(morton_encode(&coords, 3), code);
        }
    }

    #[test]
    fn morton_is_a_bijection_3d() {
        let mut seen = std::collections::HashSet::new();
        for code in 0..512u64 {
            let coords = morton_decode(code, 3, 3);
            assert!(seen.insert(coords.clone()), "collision at {code}");
        }
    }

    #[test]
    fn curve_order_is_a_permutation() {
        for (d, per_dim) in [(2usize, 16usize), (4, 4)] {
            let order = curve_order(d, per_dim);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), per_dim.pow(d as u32));
        }
    }

    #[test]
    fn curve_order_has_locality() {
        // consecutive linear positions should usually map to nearby cells;
        // measure mean Manhattan distance over the 2-d Hilbert order
        let per_dim = 32;
        let order = curve_order(2, per_dim);
        let mut total = 0usize;
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            let (ax, ay) = (a / per_dim, a % per_dim);
            let (bx, by) = (b / per_dim, b % per_dim);
            total += ax.abs_diff(bx) + ay.abs_diff(by);
        }
        let mean = total as f64 / (order.len() - 1) as f64;
        assert!((mean - 1.0).abs() < 1e-12, "Hilbert steps are unit moves");
    }
}
