//! Privelet* \[50\] — the Haar wavelet mechanism.
//!
//! Following Section 6.1, the data domain is discretized into a uniform
//! grid with 2^20 cells (1024² for 2-d, 32⁴ for 4-d). We implement the
//! multi-dimensional Haar mechanism in the *orthonormal* basis (standard
//! decomposition: a full 1-d transform along each axis) with Privelet's
//! level-weighted noise:
//!
//! * one tuple's indicator vector touches exactly one coefficient per
//!   level group per axis, and its contribution to a coefficient whose
//!   per-axis supports are `s_k` is `w_c = Π_k s_k^{-1/2}`;
//! * each coefficient receives Laplace noise with scale
//!   `λ_c = (S / ε) · √w_c`, where `S = Σ_affected √w_c`
//!   (`= Π_k Σ_g √w_{k,g}`, a small constant per axis). The total privacy
//!   loss of one tuple is `Σ_c w_c / λ_c = (ε/S)·Σ_c √w_c = ε`, so the
//!   release is ε-DP; the square-root weighting is the variance-balanced
//!   allocation of that loss across levels (uniform-loss allocation wastes
//!   budget on coarse coefficients whose reconstruction impact is tiny).
//!
//! Because a range query's indicator is orthogonal to every detail
//! function whose support it fully contains, only the boundary-crossing
//! coefficients (O(1) per level combination) carry noise into any range
//! answer — the polylog range-query error that is Privelet's selling
//! point. (See DESIGN.md §3 for how this maps onto the original's
//! weighted unnormalized transform.)

use privtree_dp::budget::Epsilon;
use privtree_dp::laplace::Laplace;
use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;
use rand::Rng;

use crate::grid::{histogram, NoisyGrid};

/// Forward orthonormal Haar transform, in place, length must be 2^k.
pub fn haar_forward(v: &mut [f64]) {
    let n = v.len();
    assert!(n.is_power_of_two());
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let mut tmp = vec![0.0; n];
    let mut len = n;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            let a = v[2 * i];
            let b = v[2 * i + 1];
            tmp[i] = (a + b) * s;
            tmp[half + i] = (a - b) * s;
        }
        v[..len].copy_from_slice(&tmp[..len]);
        len = half;
    }
}

/// Inverse orthonormal Haar transform, in place.
pub fn haar_inverse(v: &mut [f64]) {
    let n = v.len();
    assert!(n.is_power_of_two());
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let mut tmp = vec![0.0; n];
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        for i in 0..half {
            let a = v[i];
            let d = v[half + i];
            tmp[2 * i] = (a + d) * s;
            tmp[2 * i + 1] = (a - d) * s;
        }
        v[..len].copy_from_slice(&tmp[..len]);
        len *= 2;
    }
}

/// The per-axis L1 sensitivity `s₁(m)` of the orthonormal Haar transform:
/// the L1 norm of the transform of a unit indicator vector.
pub fn per_axis_sensitivity(m: usize) -> f64 {
    assert!(m.is_power_of_two());
    let k = m.trailing_zeros();
    let mut s = (m as f64).powf(-0.5); // scaling coefficient
    for l in 1..=k {
        s += 2.0f64.powf(-(l as f64) / 2.0);
    }
    s
}

/// Per-coefficient tuple contribution along one axis of length `m`, in the
/// layout produced by [`haar_forward`]: index 0 is the scaling
/// coefficient; indices `[2^{g-1}, 2^g)` are the details with support
/// `m / 2^{g-1}`. A unit tuple moves coefficient `i` by
/// `sqrt(2^{glevel(i)} / m)`.
pub fn axis_coefficient_weights(m: usize) -> Vec<f64> {
    assert!(m.is_power_of_two());
    (0..m)
        .map(|i| {
            let g = if i == 0 { 0 } else { i.ilog2() };
            ((1u64 << g) as f64 / m as f64).sqrt()
        })
        .collect()
}

/// Number of level groups along one axis: `log2(m) + 1` (one tuple touches
/// exactly one coefficient in each group).
pub fn axis_group_count(m: usize) -> usize {
    assert!(m.is_power_of_two());
    m.trailing_zeros() as usize + 1
}

/// Apply `f` to every axis-aligned line of the row-major grid along `axis`.
fn for_each_line(values: &mut [f64], bins: &[usize], axis: usize, mut f: impl FnMut(&mut [f64])) {
    let d = bins.len();
    let mut strides = vec![1usize; d];
    for k in (0..d.saturating_sub(1)).rev() {
        strides[k] = strides[k + 1] * bins[k + 1];
    }
    let axis_len = bins[axis];
    let axis_stride = strides[axis];
    let total: usize = bins.iter().product();
    let mut line = vec![0.0; axis_len];
    // enumerate all starting offsets with axis coordinate 0
    let mut visited = 0usize;
    let lines = total / axis_len;
    let mut offsets = Vec::with_capacity(lines);
    for idx in 0..total {
        // axis coordinate of idx
        if (idx / axis_stride).is_multiple_of(axis_len) {
            offsets.push(idx);
        }
    }
    for off in offsets {
        for (i, slot) in line.iter_mut().enumerate() {
            *slot = values[off + i * axis_stride];
        }
        f(&mut line);
        for (i, slot) in line.iter().enumerate() {
            values[off + i * axis_stride] = *slot;
        }
        visited += 1;
    }
    debug_assert_eq!(visited, lines);
}

/// Build a Privelet-style synopsis on a grid with `2^cells_log2` total
/// cells (split evenly across dimensions, so `cells_log2 % d == 0`;
/// Section 6.1 uses 2^20).
pub fn privelet_synopsis<R: Rng + ?Sized>(
    data: &PointSet,
    domain: &Rect,
    epsilon: Epsilon,
    cells_log2: u32,
    rng: &mut R,
) -> NoisyGrid {
    let d = data.dims();
    assert_eq!(
        cells_log2 as usize % d,
        0,
        "cells_log2 must divide evenly across dimensions"
    );
    let per_dim = 1usize << (cells_log2 as usize / d);
    let bins = vec![per_dim; d];
    let mut values = histogram(data, domain, &bins);

    // forward transform along every axis
    for axis in 0..d {
        for_each_line(&mut values, &bins, axis, haar_forward);
    }
    // Privelet noise: λ_c = (S/ε)·√w_c, the variance-balanced allocation
    // of the per-tuple privacy loss across level-group combinations.
    let weights = axis_coefficient_weights(per_dim);
    let sqrt_w: Vec<f64> = weights.iter().map(|w| w.sqrt()).collect();
    // S = Π_k Σ_{affected groups g} √w_{k,g}: one affected coefficient per
    // group, with group weights w at indices {0} ∪ {2^{g-1}}
    let axis_sqrt_sum: f64 = {
        let mut s = sqrt_w[0];
        let mut i = 1usize;
        while i < per_dim {
            s += sqrt_w[i];
            i *= 2;
        }
        s
    };
    let s_total = axis_sqrt_sum.powi(d as i32);
    let unit = Laplace::centered(1.0).expect("unit scale");
    let mut coord = vec![0usize; d];
    for (idx, v) in values.iter_mut().enumerate() {
        let mut rem = idx;
        for k in (0..d).rev() {
            coord[k] = rem % per_dim;
            rem /= per_dim;
        }
        let root_w: f64 = coord.iter().map(|&c| sqrt_w[c]).product();
        let scale = s_total * root_w / epsilon.get();
        *v += unit.sample(rng) * scale;
    }
    // inverse transform back to cell space
    for axis in 0..d {
        for_each_line(&mut values, &bins, axis, haar_inverse);
    }
    NoisyGrid::new(*domain, bins, values, "Privelet")
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_dp::rng::seeded;
    use privtree_spatial::query::{RangeCountSynopsis, RangeQuery};
    use rand::RngExt;

    #[test]
    fn haar_round_trip() {
        let mut rng = seeded(1);
        let orig: Vec<f64> = (0..64).map(|_| rng.random::<f64>() * 10.0).collect();
        let mut v = orig.clone();
        haar_forward(&mut v);
        haar_inverse(&mut v);
        for (a, b) in orig.iter().zip(&v) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn haar_is_orthonormal() {
        let mut rng = seeded(2);
        let orig: Vec<f64> = (0..128).map(|_| rng.random::<f64>()).collect();
        let mut v = orig.clone();
        haar_forward(&mut v);
        let n0: f64 = orig.iter().map(|x| x * x).sum();
        let n1: f64 = v.iter().map(|x| x * x).sum();
        assert!((n0 - n1).abs() < 1e-9, "energy not preserved");
    }

    #[test]
    fn indicator_l1_matches_formula() {
        for m in [8usize, 64, 1024] {
            for i in [0usize, 3, m - 1] {
                let mut e = vec![0.0; m];
                e[i] = 1.0;
                haar_forward(&mut e);
                let l1: f64 = e.iter().map(|x| x.abs()).sum();
                let s = per_axis_sensitivity(m);
                assert!(
                    (l1 - s).abs() < 1e-9,
                    "m = {m}, i = {i}: L1 {l1} vs formula {s}"
                );
            }
        }
    }

    #[test]
    fn sensitivity_is_bounded_constant() {
        // s₁(m) < 1 + √2 for all m
        for k in 1..=20 {
            let s = per_axis_sensitivity(1 << k);
            assert!(s < 1.0 + std::f64::consts::SQRT_2);
        }
    }

    #[test]
    fn multi_dim_transform_round_trip() {
        let mut rng = seeded(3);
        let bins = vec![8usize, 16];
        let orig: Vec<f64> = (0..128).map(|_| rng.random::<f64>()).collect();
        let mut v = orig.clone();
        for axis in 0..2 {
            for_each_line(&mut v, &bins, axis, haar_forward);
        }
        for axis in 0..2 {
            for_each_line(&mut v, &bins, axis, haar_inverse);
        }
        for (a, b) in orig.iter().zip(&v) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    /// The ε-DP ledger closes exactly: one tuple touches one coefficient
    /// per level-group combination, and Σ_c |Δc|/λ_c must equal ε.
    #[test]
    fn privacy_accounting_sums_to_epsilon() {
        for (d, per_dim) in [(1usize, 256usize), (2, 64), (4, 8)] {
            let eps = 0.7;
            let weights = axis_coefficient_weights(per_dim);
            // group representative indices: 0, 1, 2, 4, …, per_dim/2
            let mut reps = vec![0usize, 1];
            let mut i = 2usize;
            while i < per_dim {
                reps.push(i);
                i *= 2;
            }
            let axis_sqrt_sum: f64 = reps.iter().map(|&r| weights[r].sqrt()).sum();
            let s_total = axis_sqrt_sum.powi(d as i32);
            // sum the loss over all group combos (odometer over reps^d)
            let mut combo = vec![0usize; d];
            let mut loss = 0.0;
            loop {
                let w: f64 = combo.iter().map(|&c| weights[reps[c]]).product();
                let lambda = s_total * w.sqrt() / eps;
                loss += w / lambda;
                let mut k = d;
                let mut done = true;
                while k > 0 {
                    k -= 1;
                    if combo[k] + 1 < reps.len() {
                        combo[k] += 1;
                        combo.iter_mut().skip(k + 1).for_each(|c| *c = 0);
                        done = false;
                        break;
                    }
                }
                if done {
                    break;
                }
            }
            assert!(
                (loss - eps).abs() < 1e-9,
                "d = {d}, m = {per_dim}: total loss {loss} != eps {eps}"
            );
        }
    }

    #[test]
    fn synopsis_total_near_cardinality() {
        let mut rng = seeded(4);
        let mut ps = PointSet::new(2);
        for _ in 0..50_000 {
            ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
        }
        let g = privelet_synopsis(
            &ps,
            &Rect::unit(2),
            Epsilon::new(1.0).unwrap(),
            12,
            &mut seeded(5),
        );
        let total = g.answer(&RangeQuery::new(Rect::unit(2)));
        assert!((total - 50_000.0).abs() < 1_000.0, "total = {total}");
    }

    /// Privelet's raison d'être: for large range queries its noise is far
    /// below per-cell Laplace noise summed over the query.
    #[test]
    fn beats_identity_noise_on_large_queries() {
        // empty data isolates pure noise behaviour; the polylog advantage
        // needs a reasonably fine grid to show, so use m = 2^16 cells
        let ps = PointSet::new(1);
        let dom = Rect::unit(1);
        let eps = Epsilon::new(1.0).unwrap();
        let m = 1usize << 16;
        let q = RangeQuery::new(Rect::new(&[0.0], &[0.5]));
        let reps = 60;
        let mut wavelet_err = 0.0;
        let mut identity_err = 0.0;
        let mut rng = seeded(6);
        let noise = Laplace::centered(1.0 / eps.get()).unwrap();
        for rep in 0..reps {
            let g = privelet_synopsis(&ps, &dom, eps, 16, &mut seeded(700 + rep));
            wavelet_err += g.answer(&q).abs();
            // identity mechanism: per-cell Lap(1/ε)
            let s: f64 = (0..m / 2).map(|_| noise.sample(&mut rng)).sum();
            identity_err += s.abs();
        }
        assert!(
            wavelet_err * 1.5 < identity_err,
            "wavelet {wavelet_err} vs identity {identity_err}"
        );
    }

    #[test]
    fn four_dim_synopsis() {
        let mut rng = seeded(8);
        let mut ps = PointSet::new(4);
        for _ in 0..5000 {
            let p: Vec<f64> = (0..4).map(|_| rng.random::<f64>()).collect();
            ps.push(&p);
        }
        let g = privelet_synopsis(
            &ps,
            &Rect::unit(4),
            Epsilon::new(1.0).unwrap(),
            12,
            &mut seeded(9),
        );
        assert_eq!(g.bins(), &[8, 8, 8, 8]);
        let total = g.answer(&RangeQuery::new(Rect::unit(4)));
        assert!((total - 5000.0).abs() < 3_000.0, "total = {total}");
    }
}
