//! The competitor methods of Section 6.1: UG, AG, Hierarchy, a
//! Privelet*-style wavelet mechanism, and a DAWA-style two-stage method.
//!
//! All methods release a synopsis implementing
//! [`privtree_spatial::query::RangeCountSynopsis`], so the Figure 5
//! experiments can sweep methods uniformly.
//!
//! * [`grid`] — shared dense noisy-grid machinery (summed-area tables,
//!   fractional boundary cells).
//! * [`ug`] — Uniform Grid \[41, 42, 48\].
//! * [`ag`] — Adaptive Grid \[41\] (two-dimensional data only).
//! * [`hierarchy`] — the h-level decomposition of \[42\] with the Hay et al.
//!   \[25\] mean-consistency post-processing.
//! * [`wavelet`] — Privelet* \[50\]: Haar wavelet mechanism on a 2^20-cell
//!   grid (orthonormal variant; see DESIGN.md §3 for the substitution).
//! * [`hilbert`] — Hilbert / Morton space-filling curves (DAWA's
//!   linearization).
//! * [`kd`] — the private k-d tree of Xiao et al. \[51\] (Section 7 related
//!   work; shown inferior to UG/AG by \[41\]).
//! * [`dawa`] — DAWA \[30\]: data-aware L1 partitioning (ε/2) plus uniform
//!   bucket release (ε/2) on the linearized 2^20-cell grid.

pub mod ag;
pub mod dawa;
pub mod grid;
pub mod hierarchy;
pub mod hilbert;
pub mod kd;
pub mod ug;
pub mod wavelet;

pub use ag::ag_synopsis;
pub use dawa::dawa_synopsis;
pub use grid::{histogram, GridScratch, NoisyGrid};
pub use hierarchy::hierarchy_synopsis;
pub use kd::kd_synopsis;
pub use ug::ug_synopsis;
pub use wavelet::privelet_synopsis;
