//! Grid-routed frozen serving: cell-anchored traversals plus
//! summed-area interior counts.
//!
//! [`crate::frozen::FrozenSynopsis`] answers every query with a full
//! root-to-leaf traversal. That is already allocation-free, but on a
//! single core the only way to serve more queries per second is to walk
//! *fewer nodes per query*. [`GridRoutedSynopsis`] precomputes, once at
//! freeze time, a dense uniform grid over the release's root box; each
//! cell of the [`CellGrid`] stores
//!
//! * an **anchor** — the arena index of the deepest frozen node whose
//!   box fully covers the cell, so traversals for queries inside the
//!   cell can start mid-tree instead of at the root; and
//! * the **exact Section 2.2 contribution of the whole decomposition
//!   restricted to that cell** (the traversal answer for the cell box),
//!   aggregated into a d-dimensional summed-area table.
//!
//! A query then splits into an **interior block** — the cells it covers
//! completely, resolved in `O(2^d)` summed-area lookups — plus a thin
//! **boundary shell** of partially covered cells, each answered by a
//! short anchored traversal over `q ∩ cell` that reuses the frozen
//! engine's `classify`/`leaf_contribution`/carried-accumulator walk.
//! Large batches are additionally reordered by the Morton code of the
//! query centers (cache locality: nearby queries touch the same grid
//! rows and subtrees) and scattered back to input order.
//!
//! # Why the answers match the tree walk
//!
//! Splitting `q` into per-cell pieces changes *which* nodes the
//! traversal takes whole: a node fully inside `q` contributes its
//! released count in one piece, while the cell-restricted walks sum its
//! leaves. Those agree exactly when every internal count equals the sum
//! of its children — which PrivTree releases guarantee by construction
//! (Section 3.4 step 3 sets each internal node to the sum of the noisy
//! leaf counts below it). [`CellGrid::build`] therefore **verifies
//! consistency** and refuses inconsistent releases (e.g. SimpleTree,
//! whose per-node counts are independently noisy) with
//! [`GridRouteError::InconsistentCounts`]; for accepted releases the
//! grid-routed answer equals the plain frozen traversal to float
//! reassociation error (≪ 1e-9 relative, property-tested in
//! `tests/grid_routed.rs`).
//!
//! The boundary shell is stronger than "numerically equal": an anchored
//! traversal is **bit-identical** to the root traversal of the same
//! `q ∩ cell` box. The anchor descent only steps from a node to a child
//! when the child's box covers the cell *and every other sibling is
//! disjoint from it*, so in the root walk each skipped ancestor
//! classifies `Partial` (contributing nothing) and each skipped sibling
//! `Disjoint` — the `+=` sequence is exactly the anchored one
//! ([`FrozenSynopsis::answer_from`] pins this from integration tests).

use privtree_runtime::WorkerPool;

use crate::columns::Column;
#[cfg(feature = "parallel")]
use crate::frozen::BATCH_PARALLEL_THRESHOLD;
use crate::frozen::{dispatch_batch, with_query_scratch, FrozenSynopsis};
use crate::geom::Rect;
use crate::query::{RangeCountSynopsis, RangeQuery};
use crate::MAX_DIMS;

/// Why a grid could not be attached to a release.
#[derive(Debug, Clone, PartialEq)]
pub enum GridRouteError {
    /// The requested resolution is unusable (wrong dimensionality, zero
    /// bins, or more cells than the build is willing to materialize).
    BadResolution(String),
    /// The release's root box has a zero-length side, so no uniform grid
    /// over it can distinguish cells.
    DegenerateDomain { dim: usize },
    /// An internal node's released count differs from the sum of its
    /// children beyond float tolerance, so cell-decomposed answers would
    /// not match the plain traversal (SimpleTree releases look like
    /// this; PrivTree releases are consistent by construction).
    InconsistentCounts { node: usize, deviation: f64 },
}

impl std::fmt::Display for GridRouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridRouteError::BadResolution(reason) => {
                write!(f, "bad grid resolution: {reason}")
            }
            GridRouteError::DegenerateDomain { dim } => {
                write!(f, "root box has zero length along dimension {dim}")
            }
            GridRouteError::InconsistentCounts { node, deviation } => write!(
                f,
                "node {node}'s count differs from its children's sum by {deviation:e}; \
                 grid routing requires consistent counts"
            ),
        }
    }
}

impl std::error::Error for GridRouteError {}

/// Hard cap on materialized cells (anchors + values + summed-area table
/// cost ~20 bytes per cell, so this bounds a grid at ≈80 MB).
const MAX_CELLS: usize = 1 << 22;

/// Batches at least this large are Morton-reordered before answering.
pub(crate) const MORTON_BATCH_THRESHOLD: usize = 1024;

/// Automatic Morton reordering additionally requires at least this many
/// cells: the reorder buys cache locality on the grid's routing state,
/// so when anchors + table fit in fast cache anyway (small grids) the
/// sort/permute/scatter overhead is pure loss.
/// [`GridRoutedSynopsis::answer_batch_morton`] ignores the gate.
const MORTON_MIN_CELLS: usize = 1 << 16;

/// Queries overlapping at most this many cells take the plain traversal:
/// with (almost) no interior block, the summed-area path is pure shell
/// overhead. The fallback is exact — same engine, same bits.
const SMALL_QUERY_CELLS: usize = 16;

/// Relative tolerance for the parent-equals-children consistency check.
/// Legitimate releases only deviate by float reassociation (≪ 1e-12);
/// independently noised per-node counts deviate by the noise scale.
const CONSISTENCY_TOL: f64 = 1e-9;

/// The uniform grid's geometry: the release's root box cut into
/// `bins[k]` half-open slabs per dimension.
#[derive(Debug, Clone)]
struct Geometry {
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Reciprocal cell widths (seed the boundary search without a
    /// division; exactness never depends on them — the canonical
    /// `bounds` comparisons correct the estimate).
    inv_width: Vec<f64>,
    bins: Vec<usize>,
    /// Row-major strides over `bins` (dimension 0 slowest).
    strides: Vec<usize>,
    /// Reversed-layout strides (dimension 0 fastest) for the mirrored
    /// anchor copy, so a run scan along any of the two innermost
    /// dimensions reads contiguous memory.
    rev_strides: Vec<usize>,
    /// Precomputed cell boundaries, all dimensions flattened
    /// (`bins[k] + 1` values per dimension starting at `bounds_off[k]`):
    /// the first and last boundaries are pinned to the domain edges and
    /// interior ones clamped, so consecutive cells share one bit-exact
    /// boundary value and together tile the domain without gaps or
    /// overlap.
    bounds: Vec<f64>,
    bounds_off: Vec<usize>,
}

impl Geometry {
    fn new(lo: Vec<f64>, hi: Vec<f64>, width: Vec<f64>, bins: Vec<usize>) -> Self {
        let d = bins.len();
        let inv_width: Vec<f64> = width.iter().map(|w| 1.0 / w).collect();
        let mut strides = vec![1usize; d];
        for k in (0..d.saturating_sub(1)).rev() {
            strides[k] = strides[k + 1] * bins[k + 1];
        }
        let mut rev_strides = vec![1usize; d];
        for k in 1..d {
            rev_strides[k] = rev_strides[k - 1] * bins[k - 1];
        }
        let mut bounds = Vec::with_capacity(bins.iter().map(|b| b + 1).sum());
        let mut bounds_off = Vec::with_capacity(d);
        for k in 0..d {
            bounds_off.push(bounds.len());
            bounds.push(lo[k]);
            for c in 1..bins[k] {
                bounds.push((lo[k] + width[k] * c as f64).min(hi[k]));
            }
            bounds.push(hi[k]);
        }
        Self {
            lo,
            hi,
            inv_width,
            bins,
            strides,
            rev_strides,
            bounds,
            bounds_off,
        }
    }

    /// The `c`-th cell boundary along dimension `k`, for `c` in
    /// `0..=bins[k]`.
    #[inline]
    fn boundary(&self, k: usize, c: usize) -> f64 {
        self.bounds[self.bounds_off[k] + c]
    }

    fn dims(&self) -> usize {
        self.bins.len()
    }

    fn cells(&self) -> usize {
        self.bins.iter().product()
    }

    fn decode(&self, idx: usize, coord: &mut [usize]) {
        let mut rem = idx;
        for (k, c) in coord.iter_mut().enumerate().take(self.dims()) {
            *c = rem / self.strides[k];
            rem %= self.strides[k];
        }
    }
}

/// The precomputed routing structure for one frozen arena: per-cell
/// anchors, per-cell exact contributions, and their summed-area table.
/// Held by [`GridRoutedSynopsis`] (one release) and by
/// [`crate::sharded::ShardedSynopsis`] (one grid per shard arena).
#[derive(Debug, Clone)]
pub struct CellGrid {
    geo: Geometry,
    /// Per cell (row-major): arena index of the deepest node whose box
    /// fully covers the cell.
    anchors: Column<u32>,
    /// The same anchors in reversed layout (dimension 0 fastest), so
    /// boundary-shell run scans stay contiguous whichever dimension the
    /// run follows. Derived from `anchors` — never serialized.
    anchors_rev: Vec<u32>,
    /// Per cell: the decomposition's exact traversal answer for the cell
    /// box (kept alongside the table so serialization round-trips
    /// bit-exactly).
    values: Column<f64>,
    /// Per cell (row-major): the anchor's released count when the anchor
    /// is a leaf with positive volume, else unused. With `leaf_vol`,
    /// this keeps the leaf fast path entirely inside grid-local arrays —
    /// no node-array loads. (A degenerate zero-volume leaf stores
    /// count 0 / volume 1, reproducing its zero contribution.)
    leaf_count: Vec<f64>,
    /// Per cell (row-major): the anchor's box volume when the anchor is
    /// a leaf — computed by the exact multiply order of
    /// `leaf_contribution`, and stored as its *negated reciprocal* when
    /// the volume is a power of two (multiplying by the exact reciprocal
    /// is then bit-identical to dividing) — or `0.0` as the "anchor is
    /// internal, take the walk path" sentinel.
    leaf_vol: Vec<f64>,
    /// Padded inclusive prefix sums of `values`, shape `bins[k] + 1`.
    sat: Vec<f64>,
    sat_strides: Vec<usize>,
}

impl CellGrid {
    /// Precompute a grid of `bins[k]` cells per dimension over
    /// `frozen`'s root box. Cell anchors and values are computed in one
    /// pass, chunked across `pool` when given (pure per-cell work, so
    /// the result is identical for every worker count).
    pub fn build(
        frozen: &FrozenSynopsis,
        bins: &[usize],
        pool: Option<&WorkerPool>,
    ) -> Result<Self, GridRouteError> {
        let geo = Self::geometry(frozen, bins)?;
        check_consistency(frozen)?;
        let cells = geo.cells();
        let d = geo.dims();
        let work = |r: std::ops::Range<usize>| -> Vec<(u32, f64)> {
            let mut stack = Vec::with_capacity(64);
            let mut coord = [0usize; MAX_DIMS];
            let mut clo = [0.0f64; MAX_DIMS];
            let mut chi = [0.0f64; MAX_DIMS];
            r.map(|idx| {
                geo.decode(idx, &mut coord);
                for k in 0..d {
                    clo[k] = geo.boundary(k, coord[k]);
                    chi[k] = geo.boundary(k, coord[k] + 1);
                }
                let anchor = anchor_of_cell(frozen, &clo[..d], &chi[..d]);
                let value = frozen.accumulate_span(anchor, &clo[..d], &chi[..d], &mut stack, 0.0);
                (anchor, value)
            })
            .collect()
        };
        let per_cell = match pool {
            Some(pool) => pool.map_chunks(cells, pool.workers() * 4, work),
            None => work(0..cells),
        };
        let (anchors, values): (Vec<u32>, Vec<f64>) = per_cell.into_iter().unzip();
        Ok(Self::assemble(frozen, geo, anchors.into(), values.into()))
    }

    /// Re-assemble a grid from persisted parts, validating that the
    /// anchors are plausible (in range and covering their cells). The
    /// summed-area table is rebuilt deterministically from `values`, so
    /// a deserialized grid answers bit-identically to the one that was
    /// serialized. This is the entry point for every release loader
    /// (text and binary alike). The columns may be owned `Vec`s or
    /// [`Column`]s borrowing a mapped release file.
    pub fn from_parts(
        frozen: &FrozenSynopsis,
        bins: &[usize],
        anchors: impl Into<Column<u32>>,
        values: impl Into<Column<f64>>,
    ) -> Result<Self, GridRouteError> {
        let (anchors, values) = (anchors.into(), values.into());
        let geo = Self::geometry(frozen, bins)?;
        check_consistency(frozen)?;
        let cells = geo.cells();
        if anchors.len() != cells || values.len() != cells {
            return Err(GridRouteError::BadResolution(format!(
                "expected {cells} cells, got {} anchors / {} values",
                anchors.len(),
                values.len()
            )));
        }
        let d = geo.dims();
        let mut coord = [0usize; MAX_DIMS];
        for (idx, &a) in anchors.iter().enumerate() {
            if (a as usize) >= frozen.node_count() {
                return Err(GridRouteError::BadResolution(format!(
                    "cell {idx} anchor {a} out of range"
                )));
            }
            geo.decode(idx, &mut coord);
            let (nlo, nhi) = (frozen.node_lo(a as usize), frozen.node_hi(a as usize));
            for k in 0..d {
                if nlo[k] > geo.boundary(k, coord[k]) || nhi[k] < geo.boundary(k, coord[k] + 1) {
                    return Err(GridRouteError::BadResolution(format!(
                        "cell {idx} anchor {a} does not cover the cell"
                    )));
                }
            }
        }
        Ok(Self::assemble(frozen, geo, anchors, values))
    }

    fn geometry(frozen: &FrozenSynopsis, bins: &[usize]) -> Result<Geometry, GridRouteError> {
        let d = frozen.dims();
        if bins.len() != d || bins.contains(&0) {
            return Err(GridRouteError::BadResolution(format!(
                "need {d} non-zero bin counts, got {bins:?}"
            )));
        }
        let cells = bins.iter().try_fold(1usize, |acc, &b| {
            acc.checked_mul(b).filter(|&c| c <= MAX_CELLS)
        });
        if cells.is_none() {
            return Err(GridRouteError::BadResolution(format!(
                "{bins:?} exceeds the {MAX_CELLS}-cell cap"
            )));
        }
        let lo = frozen.node_lo(0).to_vec();
        let hi = frozen.node_hi(0).to_vec();
        let mut width = Vec::with_capacity(d);
        for k in 0..d {
            let side = hi[k] - lo[k];
            if side <= 0.0 {
                return Err(GridRouteError::DegenerateDomain { dim: k });
            }
            width.push(side / bins[k] as f64);
        }
        Ok(Geometry::new(lo, hi, width, bins.to_vec()))
    }

    fn assemble(
        frozen: &FrozenSynopsis,
        geo: Geometry,
        anchors: Column<u32>,
        values: Column<f64>,
    ) -> Self {
        let (sat, sat_strides) = build_sat(&geo.bins, &values);
        let d = geo.dims();
        let mut anchors_rev = vec![0u32; anchors.len()];
        let mut leaf_count = vec![0.0f64; anchors.len()];
        let mut leaf_vol = vec![0.0f64; anchors.len()];
        let mut coord = [0usize; MAX_DIMS];
        for (idx, &a) in anchors.iter().enumerate() {
            geo.decode(idx, &mut coord);
            let rev: usize = (0..d).map(|j| coord[j] * geo.rev_strides[j]).sum();
            anchors_rev[rev] = a;
            let a = a as usize;
            if frozen.child_count()[a] == 0 {
                // the exact volume product of `leaf_contribution`
                let (nlo, nhi) = (frozen.node_lo(a), frozen.node_hi(a));
                let mut vol = 1.0;
                for k in 0..d {
                    vol *= nhi[k] - nlo[k];
                }
                if vol > 0.0 {
                    leaf_count[idx] = frozen.counts()[a];
                    // a power-of-two volume (every leaf of a bisection
                    // tree over a power-of-two domain) divides by exact
                    // exponent scaling, so multiplying by the exact
                    // reciprocal is bit-identical to dividing — store
                    // the negated reciprocal as the multiply-path marker
                    let inv = 1.0 / vol;
                    let pow2 = vol.to_bits() & ((1u64 << 52) - 1) == 0;
                    if pow2 && inv.is_finite() && inv > 0.0 {
                        leaf_vol[idx] = -inv;
                    } else {
                        leaf_vol[idx] = vol;
                    }
                } else {
                    leaf_count[idx] = 0.0;
                    leaf_vol[idx] = -1.0; // degenerate leaf: contributes 0
                }
            }
        }
        Self {
            geo,
            anchors,
            anchors_rev,
            values,
            leaf_count,
            leaf_vol,
            sat,
            sat_strides,
        }
    }

    /// Cells per dimension.
    pub fn bins(&self) -> &[usize] {
        &self.geo.bins
    }

    /// Total number of cells.
    pub fn cells(&self) -> usize {
        self.values.len()
    }

    /// Per-cell anchors, row-major (dimension 0 slowest).
    pub fn anchors(&self) -> &[u32] {
        &self.anchors
    }

    /// Per-cell exact traversal contributions, row-major.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arena index anchoring the cell at `coord`.
    pub fn anchor_at(&self, coord: &[usize]) -> u32 {
        self.anchors[self.cell_index(coord)]
    }

    /// Geometry of the cell at `coord`.
    pub fn cell_rect(&self, coord: &[usize]) -> Rect {
        let d = self.geo.dims();
        assert_eq!(coord.len(), d);
        let mut lo = [0.0f64; MAX_DIMS];
        let mut hi = [0.0f64; MAX_DIMS];
        for k in 0..d {
            assert!(coord[k] < self.geo.bins[k], "cell coordinate out of range");
            lo[k] = self.geo.boundary(k, coord[k]);
            hi[k] = self.geo.boundary(k, coord[k] + 1);
        }
        Rect::new(&lo[..d], &hi[..d])
    }

    /// Bytes of precomputed routing state (anchors + values + table) —
    /// the memory the accelerator costs on top of the frozen arena.
    pub fn memory_bytes(&self) -> usize {
        (self.anchors.len() + self.anchors_rev.len()) * std::mem::size_of::<u32>()
            + (self.values.len() + self.leaf_count.len() + self.leaf_vol.len() + self.sat.len())
                * std::mem::size_of::<f64>()
    }

    fn cell_index(&self, coord: &[usize]) -> usize {
        assert_eq!(coord.len(), self.geo.dims());
        coord
            .iter()
            .zip(&self.geo.bins)
            .fold(0usize, |acc, (&c, &b)| {
                assert!(c < b, "cell coordinate out of range");
                acc * b + c
            })
    }

    /// Sum of cell values over the block `[a, b)` via the summed-area
    /// table: `O(2^d)` lookups with inclusion–exclusion signs, with the
    /// dimensionality known at compile time.
    fn block_sum_d<const D: usize>(&self, a: &[usize], b: &[usize]) -> f64 {
        let mut total = 0.0;
        for mask in 0..(1usize << D) {
            let mut off = 0usize;
            let mut sign = 1.0;
            for k in 0..D {
                let idx = if (mask >> k) & 1 == 1 {
                    sign = -sign;
                    a[k]
                } else {
                    b[k]
                };
                off += idx * self.sat_strides[k];
            }
            total += sign * self.sat[off];
        }
        total
    }

    /// The grid-routed answer for the query span `[qlo, qhi)` against
    /// `frozen` (the arena this grid was built for), added onto `init`:
    /// summed-area interior block plus anchored boundary-shell
    /// traversals. Falls back to the plain traversal for degenerate
    /// queries (zero volume) and whole-domain queries, where the plain
    /// walk is already exact and O(1)-ish.
    pub(crate) fn answer_span(
        &self,
        frozen: &FrozenSynopsis,
        qlo: &[f64],
        qhi: &[f64],
        stack: &mut Vec<u32>,
        init: f64,
    ) -> f64 {
        debug_assert_eq!(qlo.len(), self.geo.dims());
        debug_assert_eq!(qhi.len(), self.geo.dims());
        // monomorphize on the dimensionality: the hot loops over `0..d`
        // unroll, which matters at shell-piece granularity. Every
        // instantiation runs the same float operations in the same
        // order, so answers do not depend on which one dispatches.
        crate::frozen::dispatch_dims!(
            self.geo.dims(),
            D => self.answer_span_d::<D>(frozen, qlo, qhi, stack, init)
        )
    }

    fn answer_span_d<const D: usize>(
        &self,
        frozen: &FrozenSynopsis,
        qlo: &[f64],
        qhi: &[f64],
        stack: &mut Vec<u32>,
        init: f64,
    ) -> f64 {
        let d = D;
        let mut degenerate = false;
        let mut covers_all = true;
        for k in 0..d {
            // same predicate as the root's `classify`: disjoint queries
            // contribute nothing
            if qlo[k] >= self.geo.hi[k] || qhi[k] <= self.geo.lo[k] {
                return init;
            }
            degenerate |= qlo[k] >= qhi[k];
            covers_all &= qlo[k] <= self.geo.lo[k] && qhi[k] >= self.geo.hi[k];
        }
        if degenerate || covers_all {
            return frozen.accumulate_span(0, qlo, qhi, stack, init);
        }

        // queries spanning only a handful of cells have no interior to
        // speak of — the plain traversal beats paying the shell setup
        let mut span_cells = 1usize;
        for k in 0..d {
            let extent = qhi[k].min(self.geo.hi[k]) - qlo[k].max(self.geo.lo[k]);
            span_cells = span_cells.saturating_mul((extent * self.geo.inv_width[k]) as usize + 2);
        }
        if span_cells <= SMALL_QUERY_CELLS {
            return frozen.accumulate_span(0, qlo, qhi, stack, init);
        }

        // per-dimension overlapping cell range [lo_c, hi_c] (inclusive)
        // and whether the extreme cells are only partially covered
        let mut lo_c = [0usize; D];
        let mut hi_c = [0usize; D];
        let mut partial_lo = [false; D];
        let mut partial_hi = [false; D];
        let mut int_lo = [0usize; D];
        let mut int_hi = [0usize; D];
        let mut interior_nonempty = true;
        for k in 0..d {
            let b = self.geo.bins[k];
            let inv_w = self.geo.inv_width[k];
            let qlo_clip = qlo[k].max(self.geo.lo[k]);
            let qhi_clip = qhi[k].min(self.geo.hi[k]);
            // largest a with boundary(a) <= qlo_clip (float estimate,
            // then fix up against the canonical boundaries)
            let mut a = ((((qlo_clip - self.geo.lo[k]) * inv_w) as isize).clamp(0, b as isize - 1))
                as usize;
            while a + 1 < b && self.geo.boundary(k, a + 1) <= qlo_clip {
                a += 1;
            }
            while a > 0 && self.geo.boundary(k, a) > qlo_clip {
                a -= 1;
            }
            // smallest hb with boundary(hb + 1) >= qhi_clip
            let mut hb = (((((qhi_clip - self.geo.lo[k]) * inv_w).ceil() as isize) - 1)
                .clamp(0, b as isize - 1)) as usize;
            while hb + 1 < b && self.geo.boundary(k, hb + 1) < qhi_clip {
                hb += 1;
            }
            while hb > 0 && self.geo.boundary(k, hb) >= qhi_clip {
                hb -= 1;
            }
            debug_assert!(a <= hb, "inverted cell range");
            lo_c[k] = a;
            hi_c[k] = hb;
            partial_lo[k] = qlo[k] > self.geo.boundary(k, a);
            partial_hi[k] = qhi[k] < self.geo.boundary(k, hb + 1);
            int_lo[k] = a + partial_lo[k] as usize;
            let hi_excl = hb + 1 - partial_hi[k] as usize;
            if hi_excl <= int_lo[k] {
                interior_nonempty = false;
                int_hi[k] = int_lo[k];
            } else {
                int_hi[k] = hi_excl;
            }
        }

        // interior block: cells fully covered along every dimension
        let mut acc = init;
        if interior_nonempty {
            acc += self.block_sum_d::<D>(&int_lo[..d], &int_hi[..d]);
        }

        // boundary shell, partitioned by the first dimension where a
        // cell sits at a partial edge: dimensions before it stay in the
        // interior range, dimensions after it roam the full overlap
        // range (each shell cell is covered exactly once). Along the
        // innermost roaming dimension, consecutive cells sharing one
        // anchor are **merged into a single anchored traversal** over
        // their union (the anchor covers each cell, hence the union) —
        // this is what makes shell work track the *local* tree scale: a
        // coarse leaf spanning thirty cells costs one contribution, not
        // thirty.
        let mut coord = [0usize; D];
        let mut start = [0usize; D];
        let mut end = [0usize; D];
        let mut rlo = [0.0f64; D];
        let mut rhi = [0.0f64; D];
        let mut mlo = [0.0f64; D];
        let mut mhi = [0.0f64; D];
        for k in 0..d {
            let mut edges = [0usize; 2];
            let mut n_edges = 0;
            if partial_lo[k] {
                edges[n_edges] = lo_c[k];
                n_edges += 1;
            }
            if partial_hi[k] && (hi_c[k] != lo_c[k] || !partial_lo[k]) {
                edges[n_edges] = hi_c[k];
                n_edges += 1;
            }
            // innermost roaming dimension (none when d == 1)
            let run_dim = (0..d).rev().find(|&j| j != k);
            'edges: for &e in &edges[..n_edges] {
                coord[k] = e;
                mlo[k] = self.geo.boundary(k, e);
                mhi[k] = self.geo.boundary(k, e + 1);
                rlo[k] = qlo[k].max(mlo[k]);
                rhi[k] = qhi[k].min(mhi[k]).max(rlo[k]);
                for j in 0..d {
                    if j == k {
                        continue;
                    }
                    let (s, t) = if j < k {
                        (int_lo[j], int_hi[j])
                    } else {
                        (lo_c[j], hi_c[j] + 1)
                    };
                    if s >= t {
                        continue 'edges; // an earlier dimension has no interior cells
                    }
                    start[j] = s;
                    end[j] = t;
                    coord[j] = s;
                }
                let Some(run_dim) = run_dim else {
                    // d == 1: the edge is a single cell
                    let anchor = self.anchors[e];
                    acc = self.shell_piece::<D>(frozen, anchor, &rlo[..d], &rhi[..d], stack, acc);
                    continue 'edges;
                };
                // scan whichever anchor layout is contiguous along the
                // run (both hold identical values, so the grouping — and
                // therefore every answer — is the same either way)
                let (scan, scan_stride, use_rev): (&[u32], usize, bool) =
                    if self.geo.strides[run_dim] == 1 {
                        (&self.anchors, 1, false)
                    } else if self.geo.rev_strides[run_dim] == 1 {
                        (&self.anchors_rev, 1, true)
                    } else {
                        (&self.anchors, self.geo.strides[run_dim], false)
                    };
                'rows: loop {
                    // one contiguous run of cells along run_dim
                    let mut idx_base = 0usize; // scan-layout base
                    let mut row_base = 0usize; // row-major base (leaf arrays)
                    for j in 0..d {
                        if j != run_dim {
                            row_base += coord[j] * self.geo.strides[j];
                            idx_base += coord[j]
                                * if use_rev {
                                    self.geo.rev_strides[j]
                                } else {
                                    self.geo.strides[j]
                                };
                            if j != k {
                                mlo[j] = self.geo.boundary(j, coord[j]);
                                mhi[j] = self.geo.boundary(j, coord[j] + 1);
                                rlo[j] = qlo[j].max(mlo[j]);
                                rhi[j] = qhi[j].min(mhi[j]).max(rlo[j]);
                            }
                        }
                    }
                    let (s, t) = (start[run_dim], end[run_dim]);
                    let mut j0 = s;
                    while j0 < t {
                        let anchor = scan[idx_base + j0 * scan_stride];
                        let mut j1 = j0 + 1;
                        while j1 < t && scan[idx_base + j1 * scan_stride] == anchor {
                            j1 += 1;
                        }
                        mlo[run_dim] = self.geo.boundary(run_dim, j0);
                        mhi[run_dim] = self.geo.boundary(run_dim, j1);
                        rlo[run_dim] = qlo[run_dim].max(mlo[run_dim]);
                        rhi[run_dim] = qhi[run_dim].min(mhi[run_dim]).max(rlo[run_dim]);
                        let row_idx = row_base + j0 * self.geo.strides[run_dim];
                        let lv = self.leaf_vol[row_idx];
                        if lv != 0.0 {
                            // leaf anchor with positive volume: r ⊆ anchor
                            // (the anchor covers the whole run box), so
                            // `leaf_contribution`'s overlap product
                            // collapses to |r| bitwise, and count/volume
                            // come from the precomputed grid-local arrays
                            // — no node-array loads at all. A zero-width
                            // r adds a signed zero where the walk adds
                            // nothing; values agree exactly either way.
                            let mut o = 1.0;
                            for j in 0..d {
                                o *= rhi[j] - rlo[j];
                            }
                            let c = self.leaf_count[row_idx] * o;
                            acc += if lv < 0.0 { c * (-lv) } else { c / lv };
                        } else {
                            // leaf_vol == 0.0 is the "internal anchor"
                            // sentinel (degenerate leaves store volume 1
                            // with count 0 and stay on the fast path)
                            debug_assert!(frozen.child_count()[anchor as usize] > 0);
                            // subtree anchor: walk whichever of the
                            // covered part and its complement is smaller
                            let mut rvol = 1.0;
                            let mut mvol = 1.0;
                            for j in 0..d {
                                rvol *= rhi[j] - rlo[j];
                                mvol *= mhi[j] - mlo[j];
                            }
                            if 2.0 * rvol <= mvol {
                                acc = frozen.accumulate_span_d::<D>(
                                    anchor,
                                    &rlo[..d],
                                    &rhi[..d],
                                    stack,
                                    acc,
                                );
                            } else {
                                // complement counting: the run's cells are
                                // a contiguous block, so their exact total
                                // is 2^d summed-area lookups; subtracting
                                // anchored walks of the thin uncovered
                                // slabs beats walking every leaf inside
                                // the covered part
                                coord[run_dim] = j0;
                                let mut blk_b = [0usize; D];
                                for j in 0..d {
                                    blk_b[j] = coord[j] + 1;
                                }
                                blk_b[run_dim] = j1;
                                let block = self.block_sum_d::<D>(&coord[..d], &blk_b[..d]);
                                let mut slo = mlo;
                                let mut shi = mhi;
                                let mut sub = 0.0;
                                for j in 0..d {
                                    if rlo[j] > mlo[j] {
                                        shi[j] = rlo[j];
                                        sub = frozen.accumulate_span_d::<D>(
                                            anchor,
                                            &slo[..d],
                                            &shi[..d],
                                            stack,
                                            sub,
                                        );
                                        shi[j] = mhi[j];
                                    }
                                    if rhi[j] < mhi[j] {
                                        slo[j] = rhi[j];
                                        sub = frozen.accumulate_span_d::<D>(
                                            anchor,
                                            &slo[..d],
                                            &shi[..d],
                                            stack,
                                            sub,
                                        );
                                    }
                                    // restrict this dimension to the
                                    // covered range for later slabs
                                    slo[j] = rlo[j];
                                    shi[j] = rhi[j];
                                }
                                acc += block - sub;
                            }
                        }
                        j0 = j1;
                    }
                    // advance the odometer over dimensions != k, != run_dim
                    let mut j = d;
                    loop {
                        if j == 0 {
                            break 'rows;
                        }
                        j -= 1;
                        if j == k || j == run_dim {
                            continue;
                        }
                        coord[j] += 1;
                        if coord[j] < end[j] {
                            break;
                        }
                        coord[j] = start[j];
                    }
                }
            }
        }
        acc
    }

    /// One boundary-shell piece: the anchored traversal of `frozen` over
    /// `[rlo, rhi)` entered at `anchor`, with the single-`classify` case
    /// of a leaf anchor inlined (same float operations as the stack
    /// walk, so the inline is bit-identical to it).
    #[inline]
    fn shell_piece<const D: usize>(
        &self,
        frozen: &FrozenSynopsis,
        anchor: u32,
        rlo: &[f64],
        rhi: &[f64],
        stack: &mut Vec<u32>,
        acc: f64,
    ) -> f64 {
        let a = anchor as usize;
        if frozen.child_count()[a] == 0 {
            match frozen.classify_d::<D>(a, rlo, rhi) {
                crate::frozen::Overlap::Disjoint => acc,
                crate::frozen::Overlap::Contained => acc + frozen.counts()[a],
                crate::frozen::Overlap::Partial => {
                    match frozen.leaf_contribution_d::<D>(a, rlo, rhi) {
                        Some(c) => acc + c,
                        None => acc,
                    }
                }
            }
        } else {
            frozen.accumulate_span_d::<D>(anchor, rlo, rhi, stack, acc)
        }
    }

    /// Morton (Z-order) key of a query's center on a dyadic lattice over
    /// the grid's domain — the batch-reordering locality key.
    fn morton_key(&self, q: &RangeQuery) -> u64 {
        let d = self.geo.dims();
        let bits = (63 / d).min(16);
        let lattice = 1u64 << bits;
        let mut key = 0u64;
        for k in 0..d {
            let side = self.geo.hi[k] - self.geo.lo[k];
            let t = ((q.center(k) - self.geo.lo[k]) / side).clamp(0.0, 1.0);
            let cell = ((t * lattice as f64) as u64).min(lattice - 1);
            for b in 0..bits {
                key |= ((cell >> b) & 1) << (b * d + k);
            }
        }
        key
    }
}

/// Power-of-two exponent for the default per-dimension resolution:
/// ~1 cell per node spread across `d` dimensions, capped so `2^(pow*d)`
/// can never exceed [`MAX_CELLS`] (for d ≥ 3 the total-cell cap binds
/// before the per-dimension ceiling of 1024 does).
fn default_pow(nodes: usize, d: usize) -> u32 {
    let per_dim = (nodes.clamp(64, MAX_CELLS) as f64).powf(1.0 / d as f64);
    let pow = per_dim.log2().ceil().max(0.0) as u32;
    pow.min(10).min(MAX_CELLS.ilog2() / d as u32)
}

/// Verify the parent-equals-children invariant grid routing relies on.
fn check_consistency(frozen: &FrozenSynopsis) -> Result<(), GridRouteError> {
    let first = frozen.first_child();
    let kids = frozen.child_count();
    let counts = frozen.counts();
    for i in 0..frozen.node_count() {
        if kids[i] == 0 {
            continue;
        }
        let sum: f64 = (first[i]..first[i] + kids[i])
            .map(|c| counts[c as usize])
            .sum();
        let deviation = (counts[i] - sum).abs();
        if deviation > CONSISTENCY_TOL * counts[i].abs().max(1.0) {
            return Err(GridRouteError::InconsistentCounts { node: i, deviation });
        }
    }
    Ok(())
}

/// The deepest arena node whose box fully covers the cell `[clo, chi)`,
/// found by descending from the root. The descent only steps into a
/// child that covers the cell when every *other* sibling is disjoint
/// from it (and stops when a node's box equals the cell exactly) —
/// exactly the preconditions under which an anchored traversal is
/// bit-identical to the root traversal for any query inside the cell,
/// for arbitrary trees (for the builders' partition trees the guards
/// never trigger and the descent reaches the unique deepest cover).
fn anchor_of_cell(frozen: &FrozenSynopsis, clo: &[f64], chi: &[f64]) -> u32 {
    let d = clo.len();
    let first = frozen.first_child();
    let kids = frozen.child_count();
    let covers = |node: usize| -> bool {
        let (nlo, nhi) = (frozen.node_lo(node), frozen.node_hi(node));
        (0..d).all(|k| nlo[k] <= clo[k] && nhi[k] >= chi[k])
    };
    let intersects = |node: usize| -> bool {
        let (nlo, nhi) = (frozen.node_lo(node), frozen.node_hi(node));
        (0..d).all(|k| nlo[k] < chi[k] && clo[k] < nhi[k])
    };
    let box_equals = |node: usize| -> bool {
        let (nlo, nhi) = (frozen.node_lo(node), frozen.node_hi(node));
        (0..d).all(|k| nlo[k] == clo[k] && nhi[k] == chi[k])
    };
    debug_assert!(covers(0), "root must cover every cell");
    let mut a = 0usize;
    loop {
        if kids[a] == 0 || box_equals(a) {
            return a as u32;
        }
        let mut found: Option<usize> = None;
        let mut blocked = false;
        for c in first[a]..first[a] + kids[a] {
            let c = c as usize;
            if covers(c) {
                if found.is_some() {
                    blocked = true; // degenerate double-cover: stop here
                    break;
                }
                found = Some(c);
            } else if intersects(c) {
                blocked = true; // a sibling touches the cell interior
                break;
            }
        }
        match found {
            Some(c) if !blocked => a = c,
            _ => return a as u32,
        }
    }
}

/// Padded d-dimensional summed-area table of `values` (row-major over
/// `bins`), shape `bins[k] + 1` per dimension. Deterministic in its
/// inputs, so persisted grids rebuild the exact same table.
fn build_sat(bins: &[usize], values: &[f64]) -> (Vec<f64>, Vec<usize>) {
    let d = bins.len();
    let sat_shape: Vec<usize> = bins.iter().map(|b| b + 1).collect();
    let mut sat_strides = vec![1usize; d];
    for k in (0..d.saturating_sub(1)).rev() {
        sat_strides[k] = sat_strides[k + 1] * sat_shape[k + 1];
    }
    let sat_total: usize = sat_shape.iter().product();
    let mut sat = vec![0.0f64; sat_total];

    // place values at offset +1 in every dimension
    let mut val_strides = vec![1usize; d];
    for k in (0..d.saturating_sub(1)).rev() {
        val_strides[k] = val_strides[k + 1] * bins[k + 1];
    }
    let mut coord = vec![0usize; d];
    for (i, v) in values.iter().enumerate() {
        let mut rem = i;
        for k in 0..d {
            coord[k] = rem / val_strides[k];
            rem %= val_strides[k];
        }
        let off: usize = (0..d).map(|k| (coord[k] + 1) * sat_strides[k]).sum();
        sat[off] = *v;
    }
    // cumulative sum along each dimension in turn
    for k in 0..d {
        let stride = sat_strides[k];
        let dim_len = sat_shape[k];
        let outer: usize = sat_shape[..k].iter().product();
        let inner: usize = sat_shape[k + 1..].iter().product();
        for o in 0..outer {
            for i in 1..dim_len {
                let base = o * stride * dim_len + i * stride;
                let prev = base - stride;
                for j in 0..inner {
                    sat[base + j] += sat[prev + j];
                }
            }
        }
    }
    (sat, sat_strides)
}

/// The persisted columns of a [`CellGrid`], staged for later assembly.
///
/// A zero-copy release open validates the arena eagerly but defers
/// [`CellGrid::from_parts`] — the dominant cost of a gridded decode — to
/// the moment the grid is first needed. Until then the grid's anchors and
/// values stay as [`Column`]s (typically borrowing the mapped file), and
/// [`CellGridParts::assemble`] turns them into a fully validated grid.
#[derive(Debug, Clone)]
pub struct CellGridParts {
    bins: Vec<usize>,
    anchors: Column<u32>,
    values: Column<f64>,
}

impl CellGridParts {
    /// Stage grid columns for later assembly.
    pub fn new(
        bins: Vec<usize>,
        anchors: impl Into<Column<u32>>,
        values: impl Into<Column<f64>>,
    ) -> Self {
        CellGridParts {
            bins,
            anchors: anchors.into(),
            values: values.into(),
        }
    }

    /// Cells per dimension.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Per-cell anchors, row-major.
    pub fn anchors(&self) -> &[u32] {
        &self.anchors
    }

    /// Per-cell exact traversal answers, row-major.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Run full [`CellGrid::from_parts`] validation + assembly against
    /// `frozen`. Borrowed columns are cloned by Arc bump, not copied.
    pub fn assemble(&self, frozen: &FrozenSynopsis) -> Result<CellGrid, GridRouteError> {
        CellGrid::from_parts(
            frozen,
            &self.bins,
            self.anchors.clone(),
            self.values.clone(),
        )
    }
}

/// A frozen release plus its cell grid: the grid-routed serving engine.
#[derive(Debug, Clone)]
pub struct GridRoutedSynopsis {
    frozen: FrozenSynopsis,
    grid: CellGrid,
    label: &'static str,
}

impl GridRoutedSynopsis {
    /// Attach a grid at the default resolution (see
    /// [`GridRoutedSynopsis::default_bins`]), precomputed on the shared
    /// worker pool when the `parallel` feature is on.
    pub fn build(frozen: FrozenSynopsis) -> Result<Self, GridRouteError> {
        let bins = Self::default_bins(&frozen);
        Self::with_bins(frozen, &bins)
    }

    /// Attach a grid with an explicit per-dimension resolution.
    pub fn with_bins(frozen: FrozenSynopsis, bins: &[usize]) -> Result<Self, GridRouteError> {
        #[cfg(feature = "parallel")]
        let pool = Some(privtree_runtime::global());
        #[cfg(not(feature = "parallel"))]
        let pool = None;
        Self::with_bins_and_pool(frozen, bins, pool)
    }

    /// [`GridRoutedSynopsis::with_bins`] pinned to an explicit pool
    /// (`None` precomputes on the calling thread).
    pub fn with_bins_and_pool(
        frozen: FrozenSynopsis,
        bins: &[usize],
        pool: Option<&WorkerPool>,
    ) -> Result<Self, GridRouteError> {
        let grid = CellGrid::build(&frozen, bins, pool)?;
        Ok(Self::from_prebuilt(frozen, grid))
    }

    /// Wrap an arena with an already-validated grid (deserialization —
    /// e.g. a [`CellGrid::from_parts`] result, or the pieces of
    /// [`GridRoutedSynopsis::into_parts`]). The pairing is trusted the
    /// same way [`crate::sharded::ShardHandle::with_prebuilt_grid`]
    /// trusts it: a grid built for a *different* arena answers garbage.
    pub fn from_prebuilt(frozen: FrozenSynopsis, grid: CellGrid) -> Self {
        Self {
            frozen,
            grid,
            label: "GridRouted",
        }
    }

    /// Default resolution: aim for ~1 cell per tree node spread evenly
    /// across dimensions — cells at roughly the release's leaf scale —
    /// **snapped up to a power of two**. Dyadic cell boundaries coincide
    /// with the builders' bisection boundaries, so each cell nests inside
    /// the tree's boxes all the way down: the anchor descent reaches a
    /// leaf (or a node at the cell's own scale) instead of stopping at
    /// the first straddled coarse boundary, and boundary-shell work
    /// stays proportional to the local tree complexity. Non-dyadic
    /// resolutions remain *correct* (the equality contract never depends
    /// on alignment), just slower. Finer grids trade anchor-scan cache
    /// traffic for shallower shell walks — the bench's resolution sweep
    /// put the optimum at cell ≈ leaf scale.
    pub fn default_bins(frozen: &FrozenSynopsis) -> Vec<usize> {
        let d = frozen.dims();
        vec![1usize << default_pow(frozen.node_count(), d); d]
    }

    /// The underlying frozen arena.
    pub fn frozen(&self) -> &FrozenSynopsis {
        &self.frozen
    }

    /// The routing grid.
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// Drop the grid, keeping the plain frozen engine.
    pub fn into_frozen(self) -> FrozenSynopsis {
        self.frozen
    }

    /// Take the engine apart into its arena and grid — e.g. to hand a
    /// deserialized release (grid included) to the sharded/epoch layer as
    /// one [`crate::sharded::ShardHandle`].
    pub fn into_parts(self) -> (FrozenSynopsis, CellGrid) {
        (self.frozen, self.grid)
    }

    /// Override the display label.
    pub fn with_label(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }

    /// Answer a workload on the calling thread in input order with one
    /// reused traversal stack — the reference every other batch path is
    /// compared against (per query the float operations are identical,
    /// so Morton reordering and pool chunking stay bit-identical).
    pub fn answer_batch_sequential(&self, queries: &[RangeQuery]) -> Vec<f64> {
        let mut stack = Vec::with_capacity(64);
        queries
            .iter()
            .map(|q| {
                self.grid
                    .answer_span(&self.frozen, q.rect.lo(), q.rect.hi(), &mut stack, 0.0)
            })
            .collect()
    }

    /// Answer a workload in Morton order (queries sorted by the Z-order
    /// code of their centers, so neighbouring queries hit the same grid
    /// rows and subtrees back to back), scattering the answers back to
    /// input order. Bit-identical to
    /// [`GridRoutedSynopsis::answer_batch_sequential`]: each query is
    /// answered independently by the same operations.
    pub fn answer_batch_morton(&self, queries: &[RangeQuery]) -> Vec<f64> {
        let perm = self.morton_permutation(queries);
        let reordered: Vec<RangeQuery> = perm.iter().map(|&i| queries[i as usize]).collect();
        let answers = self.answer_batch_sequential(&reordered);
        scatter(&perm, answers)
    }

    /// Answer a workload chunked across `pool`; batches large enough to
    /// benefit are Morton-reordered first (the scatter restores input
    /// order). Bit-identical to the sequential path for every worker
    /// count.
    pub fn answer_batch_with_pool(&self, queries: &[RangeQuery], pool: &WorkerPool) -> Vec<f64> {
        if queries.len() >= MORTON_BATCH_THRESHOLD && self.grid.cells() >= MORTON_MIN_CELLS {
            let perm = self.morton_permutation(queries);
            let reordered: Vec<RangeQuery> = perm.iter().map(|&i| queries[i as usize]).collect();
            let answers = dispatch_batch(&reordered, pool, |chunk| {
                self.answer_batch_sequential(chunk)
            });
            return scatter(&perm, answers);
        }
        dispatch_batch(queries, pool, |chunk| self.answer_batch_sequential(chunk))
    }

    /// Indices of `queries` sorted by (Morton key, input index) — a
    /// deterministic permutation.
    fn morton_permutation(&self, queries: &[RangeQuery]) -> Vec<u32> {
        let mut keyed: Vec<(u64, u32)> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (self.grid.morton_key(q), i as u32))
            .collect();
        keyed.sort_unstable();
        keyed.into_iter().map(|(_, i)| i).collect()
    }
}

/// Restore Morton-ordered `answers` to input order (`perm[i]` is the
/// input index answered at position `i`).
fn scatter(perm: &[u32], answers: Vec<f64>) -> Vec<f64> {
    let mut out = vec![0.0f64; answers.len()];
    for (&src, a) in perm.iter().zip(answers) {
        out[src as usize] = a;
    }
    out
}

impl RangeCountSynopsis for GridRoutedSynopsis {
    fn answer(&self, q: &RangeQuery) -> f64 {
        with_query_scratch(|stack, _| {
            self.grid
                .answer_span(&self.frozen, q.rect.lo(), q.rect.hi(), stack, 0.0)
        })
    }

    fn answer_batch(&self, queries: &[RangeQuery]) -> Vec<f64> {
        #[cfg(feature = "parallel")]
        {
            let pool = privtree_runtime::global();
            if pool.workers() > 1 && queries.len() >= BATCH_PARALLEL_THRESHOLD {
                return self.answer_batch_with_pool(queries, pool);
            }
        }
        if queries.len() >= MORTON_BATCH_THRESHOLD && self.grid.cells() >= MORTON_MIN_CELLS {
            return self.answer_batch_morton(queries);
        }
        self.answer_batch_sequential(queries)
    }

    fn label(&self) -> &'static str {
        self.label
    }
}

impl FrozenSynopsis {
    /// Upgrade into the grid-routed engine at the default resolution.
    /// Fails (returning nothing but the error — freeze again to retry)
    /// when the release cannot be grid-routed; see [`GridRouteError`].
    pub fn grid_route(self) -> Result<GridRoutedSynopsis, GridRouteError> {
        GridRoutedSynopsis::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PointSet;
    use crate::quadtree::SplitConfig;
    use crate::synopsis::{exact_synopsis, privtree_synopsis, simple_tree_synopsis};
    use privtree_dp::budget::Epsilon;
    use privtree_dp::rng::seeded;
    use rand::RngExt;

    fn clustered(n: usize, seed: u64) -> PointSet {
        let mut rng = seeded(seed);
        let mut ps = PointSet::new(2);
        for i in 0..n {
            if i % 6 == 0 {
                ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
            } else {
                ps.push(&[
                    0.4 + rng.random::<f64>() * 0.08,
                    0.1 + rng.random::<f64>() * 0.08,
                ]);
            }
        }
        ps
    }

    fn sample_frozen(seed: u64) -> FrozenSynopsis {
        privtree_synopsis(
            &clustered(4000, seed),
            Rect::unit(2),
            SplitConfig::full(2),
            Epsilon::new(1.0).unwrap(),
            &mut seeded(seed),
        )
        .unwrap()
        .freeze()
    }

    fn random_queries(n: usize, seed: u64) -> Vec<RangeQuery> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| {
                let a: f64 = rng.random::<f64>() * 1.2 - 0.1;
                let b: f64 = rng.random::<f64>() * 1.2 - 0.1;
                let c: f64 = rng.random::<f64>() * 1.2 - 0.1;
                let d: f64 = rng.random::<f64>() * 1.2 - 0.1;
                RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]))
            })
            .collect()
    }

    fn assert_matches(frozen: &FrozenSynopsis, grid: &GridRoutedSynopsis, queries: &[RangeQuery]) {
        for q in queries {
            let a = frozen.answer(q);
            let b = grid.answer(q);
            let tol = 1e-9 * a.abs().max(1.0);
            assert!((a - b).abs() <= tol, "frozen {a} vs grid {b} on {}", q.rect);
        }
    }

    #[test]
    fn grid_matches_frozen_across_resolutions() {
        let frozen = sample_frozen(1);
        let queries = random_queries(250, 2);
        for bins in [[1usize, 1], [2, 3], [17, 17], [64, 64], [128, 31]] {
            let grid = GridRoutedSynopsis::with_bins(frozen.clone(), &bins).unwrap();
            assert_matches(&frozen, &grid, &queries);
        }
    }

    #[test]
    fn default_build_matches_frozen() {
        let frozen = sample_frozen(3);
        let grid = frozen.clone().grid_route().unwrap();
        assert_eq!(grid.grid().bins().len(), 2);
        assert!(grid.grid().memory_bytes() > 0);
        assert_matches(&frozen, &grid, &random_queries(300, 4));
    }

    #[test]
    fn degenerate_and_whole_domain_queries_are_exact() {
        let frozen = sample_frozen(5);
        let grid = GridRoutedSynopsis::with_bins(frozen.clone(), &[13, 7]).unwrap();
        for q in [
            RangeQuery::new(Rect::unit(2)),                         // whole domain
            RangeQuery::new(Rect::new(&[-1.0, -1.0], &[2.0, 2.0])), // superset
            RangeQuery::new(Rect::new(&[0.3, 0.1], &[0.3, 0.9])),   // zero width
            RangeQuery::new(Rect::new(&[0.25, 0.5], &[0.25, 0.5])), // zero area
            RangeQuery::new(Rect::new(&[1.5, 1.5], &[1.8, 1.9])),   // disjoint
            RangeQuery::new(Rect::new(&[0.999, 0.999], &[1.0, 1.0])), // corner sliver
        ] {
            assert_eq!(
                frozen.answer(&q).to_bits(),
                grid.answer(&q).to_bits(),
                "fallback paths must be bit-exact on {}",
                q.rect
            );
        }
    }

    #[test]
    fn anchored_shell_traversals_are_bit_identical() {
        let frozen = sample_frozen(7);
        let grid = GridRoutedSynopsis::with_bins(frozen.clone(), &[23, 29]).unwrap();
        let mut rng = seeded(8);
        for _ in 0..300 {
            let coord = [
                (rng.random::<f64>() * 23.0) as usize % 23,
                (rng.random::<f64>() * 29.0) as usize % 29,
            ];
            let cell = grid.grid().cell_rect(&coord);
            // a random sub-box of the cell
            let mut lo = [0.0; 2];
            let mut hi = [0.0; 2];
            for k in 0..2 {
                let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
                lo[k] = cell.lo()[k] + a.min(b) * cell.side(k);
                hi[k] = cell.lo()[k] + a.max(b) * cell.side(k);
            }
            let q = RangeQuery::new(Rect::new(&lo, &hi));
            let anchor = grid.grid().anchor_at(&coord) as usize;
            assert_eq!(
                frozen.answer(&q).to_bits(),
                frozen.answer_from(anchor, &q).to_bits(),
                "anchored traversal diverged at cell {coord:?}"
            );
        }
    }

    #[test]
    fn cell_values_equal_root_traversal_of_cells() {
        let frozen = sample_frozen(9);
        let grid = GridRoutedSynopsis::with_bins(frozen.clone(), &[11, 5]).unwrap();
        for i in 0..11 {
            for j in 0..5 {
                let cell = grid.grid().cell_rect(&[i, j]);
                let expected = frozen.answer(&RangeQuery::new(cell));
                let got = grid.grid().values()[i * 5 + j];
                assert_eq!(expected.to_bits(), got.to_bits(), "cell ({i},{j})");
            }
        }
    }

    #[test]
    fn batch_paths_are_bit_identical() {
        let frozen = sample_frozen(11);
        let grid = GridRoutedSynopsis::with_bins(frozen, &[40, 40]).unwrap();
        let queries = random_queries(MORTON_BATCH_THRESHOLD + 200, 12);
        let reference = grid.answer_batch_sequential(&queries);
        for (q, r) in queries.iter().zip(&reference) {
            assert_eq!(grid.answer(q).to_bits(), r.to_bits());
        }
        let morton = grid.answer_batch_morton(&queries);
        for (a, b) in reference.iter().zip(&morton) {
            assert_eq!(a.to_bits(), b.to_bits(), "morton reorder changed bits");
        }
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers);
            let pooled = grid.answer_batch_with_pool(&queries, &pool);
            for (a, b) in reference.iter().zip(&pooled) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers = {workers}");
            }
        }
        let auto = grid.answer_batch(&queries);
        for (a, b) in reference.iter().zip(&auto) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pooled_build_matches_sequential_build() {
        let frozen = sample_frozen(13);
        let seq = CellGrid::build(&frozen, &[31, 31], None).unwrap();
        for workers in [2usize, 4, 8] {
            let pool = WorkerPool::new(workers);
            let pooled = CellGrid::build(&frozen, &[31, 31], Some(&pool)).unwrap();
            assert_eq!(seq.anchors(), pooled.anchors(), "workers = {workers}");
            let same_bits = seq
                .values()
                .iter()
                .zip(pooled.values())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bits, "cell values diverged at workers = {workers}");
        }
    }

    #[test]
    fn exact_release_stays_exact() {
        let ps = clustered(3000, 15);
        let frozen = exact_synopsis(&ps, Rect::unit(2), SplitConfig::full(2), 25.0, None).freeze();
        let grid = GridRoutedSynopsis::with_bins(frozen, &[32, 32]).unwrap();
        for q in [
            Rect::new(&[0.0, 0.0], &[0.5, 0.5]),
            Rect::new(&[0.125, 0.25], &[0.625, 0.875]),
        ] {
            let truth = ps.count_in(&q) as f64;
            let est = grid.answer(&RangeQuery::new(q));
            assert!((est - truth).abs() < 1e-9, "query {q}: {est} vs {truth}");
        }
    }

    #[test]
    fn inconsistent_release_is_refused() {
        let ps = clustered(3000, 17);
        let frozen = simple_tree_synopsis(
            &ps,
            Rect::unit(2),
            SplitConfig::full(2),
            Epsilon::new(1.0).unwrap(),
            5,
            30.0,
            &mut seeded(18),
        )
        .unwrap()
        .freeze();
        match GridRoutedSynopsis::build(frozen) {
            Err(GridRouteError::InconsistentCounts { .. }) => {}
            other => panic!("expected InconsistentCounts, got {other:?}"),
        }
    }

    #[test]
    fn default_resolution_never_exceeds_the_cell_cap() {
        for d in 1..=8usize {
            for nodes in [1usize, 64, 13_313, 2_000_000, usize::MAX / 2] {
                let pow = default_pow(nodes, d);
                let cells = (0..d).try_fold(1usize, |acc, _| acc.checked_mul(1 << pow));
                assert!(
                    cells.is_some_and(|c| c <= MAX_CELLS),
                    "d = {d}, nodes = {nodes}: 2^({pow}*{d}) exceeds MAX_CELLS"
                );
            }
        }
    }

    #[test]
    fn bad_resolutions_are_refused() {
        let frozen = sample_frozen(19);
        assert!(matches!(
            GridRoutedSynopsis::with_bins(frozen.clone(), &[0, 4]),
            Err(GridRouteError::BadResolution(_))
        ));
        assert!(matches!(
            GridRoutedSynopsis::with_bins(frozen.clone(), &[4]),
            Err(GridRouteError::BadResolution(_))
        ));
        assert!(matches!(
            GridRoutedSynopsis::with_bins(frozen, &[1 << 16, 1 << 16]),
            Err(GridRouteError::BadResolution(_))
        ));
    }

    #[test]
    fn three_dim_domain_matches_frozen() {
        let mut rng = seeded(21);
        let mut ps = PointSet::new(3);
        for _ in 0..3000 {
            ps.push(&[
                rng.random::<f64>() * 0.4,
                rng.random::<f64>(),
                0.5 + rng.random::<f64>() * 0.3,
            ]);
        }
        let frozen = privtree_synopsis(
            &ps,
            Rect::unit(3),
            SplitConfig::full(3),
            Epsilon::new(1.0).unwrap(),
            &mut seeded(22),
        )
        .unwrap()
        .freeze();
        let grid = GridRoutedSynopsis::with_bins(frozen.clone(), &[9, 6, 11]).unwrap();
        let mut rng = seeded(23);
        for _ in 0..120 {
            let mut lo = [0.0; 3];
            let mut hi = [0.0; 3];
            for k in 0..3 {
                let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
                lo[k] = a.min(b);
                hi[k] = a.max(b);
            }
            let q = RangeQuery::new(Rect::new(&lo, &hi));
            let a = frozen.answer(&q);
            let b = grid.answer(&q);
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "3-d: {a} vs {b} on {}",
                q.rect
            );
        }
    }

    #[test]
    fn single_node_release_grid() {
        let tree = privtree_core::tree::Tree::with_root(Rect::unit(2));
        let frozen = FrozenSynopsis::from_tree(&tree, &[8.0], "tiny");
        let grid = GridRoutedSynopsis::with_bins(frozen.clone(), &[4, 4]).unwrap();
        assert!(grid.grid().anchors().iter().all(|&a| a == 0));
        let q = RangeQuery::new(Rect::new(&[0.1, 0.1], &[0.6, 0.6]));
        let a = frozen.answer(&q);
        let b = grid.answer(&q);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
}
