//! Owned-or-borrowed column storage for frozen synopsis arrays.
//!
//! A [`Column<T>`] behaves exactly like a `Vec<T>` for readers — it
//! derefs to `&[T]` with no per-access branching — but its elements can
//! live in one of two places:
//!
//! * **Owned**: a plain `Vec<T>`, produced by the build path, text
//!   loads, and the copying binary decoder.
//! * **Borrowed**: a typed window into a byte buffer owned by an
//!   `Arc<dyn StableBytes>` — typically a memory-mapped release file —
//!   so the column is served straight from the page cache without ever
//!   copying it into process-private memory.
//!
//! Validation (`from_flat_parts`, `CellGrid::from_parts`) runs on the
//! dereferenced slice and is therefore identical for both storages.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Byte buffers whose storage address is stable for the lifetime of the
/// value.
///
/// # Safety
///
/// Implementors guarantee that the slice returned by
/// [`stable_bytes`](StableBytes::stable_bytes) points at the same
/// allocation, with the same length and unchanged contents, for as long
/// as the value exists — even if the value itself is moved. Heap-backed
/// buffers (`Vec<u8>`, memory mappings) satisfy this; inline buffers
/// (arrays stored by value) do not.
pub unsafe trait StableBytes: Send + Sync + fmt::Debug + 'static {
    /// The stable backing bytes.
    fn stable_bytes(&self) -> &[u8];
}

// SAFETY: the Vec's heap allocation never moves while the Vec is alive,
// and this impl is only reachable through an Arc, so the Vec is never
// mutated after construction.
unsafe impl StableBytes for Vec<u8> {
    fn stable_bytes(&self) -> &[u8] {
        self
    }
}

/// Scalar types a [`Column`] may borrow from raw bytes.
///
/// Sealed to the plain-old-data scalars of the `privtree-bin` format:
/// every bit pattern of the right width must be a valid value.
pub trait ColumnScalar: Copy + Send + Sync + fmt::Debug + 'static + sealed::Sealed {}

impl ColumnScalar for u32 {}
impl ColumnScalar for f64 {}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for f64 {}
}

/// The error returned when a borrowed column window fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnError {
    /// The requested window extends past the owner's bytes.
    OutOfBounds,
    /// The window start is not aligned for the scalar type.
    Misaligned,
}

impl fmt::Display for ColumnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnError::OutOfBounds => write!(f, "borrowed column window out of bounds"),
            ColumnError::Misaligned => write!(f, "borrowed column window misaligned"),
        }
    }
}

impl std::error::Error for ColumnError {}

enum Storage<T> {
    Owned(Vec<T>),
    /// Keeps the backing buffer alive; the data pointer/len cached on the
    /// column point into it.
    Borrowed(Arc<dyn StableBytes>),
}

/// A read-only column of scalars, either owned or borrowed from a stable
/// byte buffer (see module docs).
pub struct Column<T: ColumnScalar> {
    ptr: *const T,
    len: usize,
    storage: Storage<T>,
}

// SAFETY: the pointee is either the column's own Vec or a buffer kept
// alive by the Arc in `storage`; both are immutable and Send + Sync.
unsafe impl<T: ColumnScalar> Send for Column<T> {}
unsafe impl<T: ColumnScalar> Sync for Column<T> {}

impl<T: ColumnScalar> Column<T> {
    /// Wrap an owned vector.
    pub fn owned(values: Vec<T>) -> Self {
        let ptr = values.as_ptr();
        let len = values.len();
        Column {
            ptr,
            len,
            storage: Storage::Owned(values),
        }
    }

    /// Borrow `len` scalars starting at byte `offset` of `owner`'s
    /// stable bytes.
    ///
    /// Checks bounds and alignment; the scalar itself is sealed to types
    /// for which every bit pattern is valid, so on success the
    /// reinterpretation is sound. Callers are responsible for byte-order:
    /// this is a plain in-memory view, so little-endian on-disk columns
    /// must only be borrowed on little-endian hosts.
    pub fn borrowed(
        owner: Arc<dyn StableBytes>,
        offset: usize,
        len: usize,
    ) -> Result<Self, ColumnError> {
        let bytes = owner.stable_bytes();
        let width = std::mem::size_of::<T>();
        let byte_len = len.checked_mul(width).ok_or(ColumnError::OutOfBounds)?;
        let end = offset
            .checked_add(byte_len)
            .ok_or(ColumnError::OutOfBounds)?;
        if end > bytes.len() {
            return Err(ColumnError::OutOfBounds);
        }
        let ptr = bytes[offset..].as_ptr();
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(ColumnError::Misaligned);
        }
        Ok(Column {
            ptr: ptr as *const T,
            len,
            storage: Storage::Borrowed(owner),
        })
    }

    /// Whether this column borrows from an external buffer (as opposed
    /// to owning its elements).
    pub fn is_borrowed(&self) -> bool {
        matches!(self.storage, Storage::Borrowed(_))
    }

    /// Copy the column into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[T] {
        // SAFETY: `ptr`/`len` describe either the owned Vec's buffer or
        // a validated window into the borrowed owner's stable bytes;
        // both stay valid and immutable while `self` is alive. A
        // zero-len owned column's `Vec::as_ptr` is non-null and aligned,
        // as `from_raw_parts` requires.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: ColumnScalar> Deref for Column<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: ColumnScalar> From<Vec<T>> for Column<T> {
    fn from(values: Vec<T>) -> Self {
        Column::owned(values)
    }
}

impl<T: ColumnScalar> Clone for Column<T> {
    fn clone(&self) -> Self {
        match &self.storage {
            // cloning a borrowed column is an Arc bump, not a copy
            Storage::Borrowed(owner) => Column {
                ptr: self.ptr,
                len: self.len,
                storage: Storage::Borrowed(Arc::clone(owner)),
            },
            Storage::Owned(values) => Column::owned(values.clone()),
        }
    }
}

impl<T: ColumnScalar> fmt::Debug for Column<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.storage {
            Storage::Owned(_) => "owned",
            Storage::Borrowed(_) => "borrowed",
        };
        write!(f, "Column<{kind}; len={}>", self.len)
    }
}

impl<T: ColumnScalar + PartialEq> PartialEq for Column<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_column_derefs_to_its_elements() {
        let col: Column<f64> = vec![1.0, 2.0, 3.0].into();
        assert_eq!(&col[..], &[1.0, 2.0, 3.0]);
        assert_eq!(col.len(), 3);
        assert!(!col.is_borrowed());
        let copy = col.clone();
        assert_eq!(&copy[..], &col[..]);
    }

    #[test]
    fn empty_owned_column_is_fine() {
        let col: Column<u32> = Vec::new().into();
        assert!(col.is_empty());
        assert_eq!(col.to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn borrowed_column_reads_the_owner_bytes() {
        let mut bytes = Vec::new();
        for v in [7u32, 8, 9, 10] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let owner: Arc<dyn StableBytes> = Arc::new(bytes);
        let col = Column::<u32>::borrowed(Arc::clone(&owner), 4, 2).unwrap();
        assert!(col.is_borrowed());
        if cfg!(target_endian = "little") {
            assert_eq!(&col[..], &[8, 9]);
        }
        // the clone shares the owner rather than copying
        let copy = col.clone();
        assert!(copy.is_borrowed());
        assert_eq!(&copy[..], &col[..]);
    }

    #[test]
    fn borrowed_column_checks_bounds_and_alignment() {
        let owner: Arc<dyn StableBytes> = Arc::new(vec![0u8; 64]);
        assert_eq!(
            Column::<f64>::borrowed(Arc::clone(&owner), 0, 9).unwrap_err(),
            ColumnError::OutOfBounds
        );
        assert_eq!(
            Column::<u32>::borrowed(Arc::clone(&owner), 63, 1).unwrap_err(),
            ColumnError::OutOfBounds
        );
        assert_eq!(
            Column::<u32>::borrowed(Arc::clone(&owner), usize::MAX, 1).unwrap_err(),
            ColumnError::OutOfBounds
        );
        // a Vec<u8> is 1-aligned, so some offset within it must be
        // misaligned for u32
        let base = owner.stable_bytes().as_ptr() as usize;
        let misaligned = (4 - (base % 4) + 1) % 4 + 1;
        assert_eq!(
            Column::<u32>::borrowed(Arc::clone(&owner), misaligned, 1).unwrap_err(),
            ColumnError::Misaligned
        );
    }

    #[test]
    fn borrowed_column_keeps_the_owner_alive() {
        let mut bytes = Vec::new();
        for v in [1.5f64, -2.5, 4.25] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let col = {
            let owner: Arc<dyn StableBytes> = Arc::new(bytes);
            Column::<f64>::borrowed(owner, 0, 3).unwrap()
        };
        if cfg!(target_endian = "little") {
            assert_eq!(&col[..], &[1.5, -2.5, 4.25]);
        }
    }
}
