//! A read-optimized, structure-of-arrays view of a released synopsis.
//!
//! [`crate::synopsis::SpatialSynopsis`] answers queries by walking a
//! `Tree<Rect>` — fine for one-off questions, but every visit chases a
//! node entry holding a padded [`Rect`] (two `[f64; MAX_DIMS]` corners)
//! plus tree bookkeeping. A serving system that answers millions of
//! range-count queries over one immutable release wants the opposite
//! layout: the release is frozen once into parallel flat arrays
//! (`lo`/`hi` coordinates packed at the *actual* dimensionality, child
//! ranges, counts) and every query runs an allocation-free iterative
//! traversal over them. Single queries borrow a thread-local traversal
//! stack, so even [`FrozenSynopsis::answer`] allocates nothing per call;
//! batches go further and chunk the workload across the persistent
//! `privtree-runtime` worker pool with one traversal stack per chunk
//! ([`FrozenSynopsis::answer_batch_with_pool`]; with the default
//! `parallel` feature, [`RangeCountSynopsis::answer_batch`] engages the
//! shared global pool automatically on large workloads). Every query is
//! answered independently by the same float operations, so pooled batch
//! answers are bit-identical to the sequential loop for every worker
//! count (property-tested in `tests/serving.rs`).
//!
//! Freezing is lossless: [`FrozenSynopsis::thaw`] reconstructs the exact
//! tree (same arena order), and the answers agree with the tree-walk to
//! floating-point reassociation error (≪ 1e-9; property-tested in
//! `tests/proptest_invariants.rs`).

use std::cell::RefCell;

use privtree_core::tree::{NodeId, Tree};
use privtree_runtime::WorkerPool;

use crate::columns::Column;
use crate::geom::Rect;
use crate::query::{RangeCountSynopsis, RangeQuery};
use crate::synopsis::SpatialSynopsis;

thread_local! {
    /// A pool of reusable traversal stacks for single-query entry points.
    /// A pool (rather than one fixed pair) makes [`with_query_scratch`]
    /// reentrant: each call *takes* two stacks out of the `RefCell` and
    /// returns them afterwards, so a nested call — e.g. an engine whose
    /// `answer` consults another engine inside the closure — simply takes
    /// two more instead of panicking on a double `borrow_mut`.
    static QUERY_SCRATCH: RefCell<Vec<Vec<u32>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a reusable pair of traversal stacks (one for the possibly
/// sharded top arena, one for shard descents), drawn from the calling
/// thread's scratch pool. Safe to nest: the `RefCell` is only borrowed
/// while checking stacks in and out, never across `f`. If `f` panics the
/// two checked-out stacks are dropped rather than returned — the pool
/// stays coherent, it just re-allocates on the next call.
pub(crate) fn with_query_scratch<R>(f: impl FnOnce(&mut Vec<u32>, &mut Vec<u32>) -> R) -> R {
    let (mut top, mut shard) = QUERY_SCRATCH.with(|cell| {
        let mut pool = cell.borrow_mut();
        let top = pool.pop().unwrap_or_else(|| Vec::with_capacity(64));
        let shard = pool.pop().unwrap_or_else(|| Vec::with_capacity(64));
        (top, shard)
    });
    let out = f(&mut top, &mut shard);
    QUERY_SCRATCH.with(|cell| {
        let mut pool = cell.borrow_mut();
        pool.push(shard);
        pool.push(top);
    });
    out
}

/// The one copy of the pooled batch-dispatch policy, shared by the frozen
/// and sharded engines: cut the workload into `workers*2` contiguous
/// ranges (one pool task each, mild oversubscription against query skew)
/// and answer each chunk with `answer_chunk`, which sets up its own
/// per-chunk traversal scratch. Falls back to one chunk on the caller
/// when the pool cannot help. Ordered collection keeps the output
/// bit-identical to `answer_chunk(queries)` for every worker count.
pub(crate) fn dispatch_batch(
    queries: &[RangeQuery],
    pool: &WorkerPool,
    answer_chunk: impl Fn(&[RangeQuery]) -> Vec<f64> + Sync,
) -> Vec<f64> {
    pool.map_chunks(queries.len(), pool.workers() * 2, |r| {
        answer_chunk(&queries[r])
    })
}

/// Dispatch a dimensionality-generic method over the supported
/// dimensionalities (1 through [`crate::MAX_DIMS`]), so hot per-node
/// loops compile with the dimension count known. Every instantiation
/// performs the same float operations in the same order — which arm runs
/// can never change an answer's bits.
macro_rules! dispatch_dims {
    ($dims:expr, $D:ident => $call:expr) => {
        match $dims {
            1 => {
                const $D: usize = 1;
                $call
            }
            2 => {
                const $D: usize = 2;
                $call
            }
            3 => {
                const $D: usize = 3;
                $call
            }
            4 => {
                const $D: usize = 4;
                $call
            }
            5 => {
                const $D: usize = 5;
                $call
            }
            6 => {
                const $D: usize = 6;
                $call
            }
            7 => {
                const $D: usize = 7;
                $call
            }
            8 => {
                const $D: usize = 8;
                $call
            }
            d => unreachable!("dimensionality {d} exceeds MAX_DIMS"),
        }
    };
}
pub(crate) use dispatch_dims;

/// Why a set of flat arrays is not a valid frozen arena. Returned by
/// [`FrozenSynopsis::from_flat_parts`], the constructor deserializers use
/// — a decoder handing over hostile bytes gets a typed refusal, never a
/// panic deeper in the read path.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatLayoutError {
    /// Zero nodes — there is no release to serve.
    Empty,
    /// Dimensionality outside `1..=MAX_DIMS`.
    BadDims { dims: usize },
    /// An array's length disagrees with the node count / dimensionality.
    LengthMismatch {
        array: &'static str,
        expected: usize,
        found: usize,
    },
    /// A node's box is not a finite `lo <= hi` rectangle.
    BadGeometry { node: usize },
    /// The child ranges do not tile the arena (children must be
    /// contiguous, appear after their parent, and cover nodes `1..n`
    /// exactly once; leaves must carry `first_child == 0`).
    BadChildRange { node: usize, reason: String },
}

impl std::fmt::Display for FlatLayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlatLayoutError::Empty => write!(f, "zero-node arena"),
            FlatLayoutError::BadDims { dims } => {
                write!(f, "dimensionality {dims} outside 1..={}", crate::MAX_DIMS)
            }
            FlatLayoutError::LengthMismatch {
                array,
                expected,
                found,
            } => write!(
                f,
                "{array} array holds {found} entries, expected {expected}"
            ),
            FlatLayoutError::BadGeometry { node } => {
                write!(f, "node {node} is not a finite lo <= hi box")
            }
            FlatLayoutError::BadChildRange { node, reason } => {
                write!(f, "bad child range at node {node}: {reason}")
            }
        }
    }
}

impl std::error::Error for FlatLayoutError {}

/// How a node's box relates to a query box in the Section 2.2 traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Overlap {
    /// Case 1: no overlap — contributes nothing.
    Disjoint,
    /// Case 2: node fully inside the query — take its released count.
    Contained,
    /// Cases 3/4: partial overlap — descend or apply the uniform rule.
    Partial,
}

/// A flattened, immutable synopsis: one release, many fast reads.
#[derive(Debug, Clone)]
pub struct FrozenSynopsis {
    dims: usize,
    /// Lower corners, packed `dims` coordinates per node.
    lo: Column<f64>,
    /// Upper corners, packed `dims` coordinates per node.
    hi: Column<f64>,
    /// Arena index of each node's first child (0 for leaves).
    first_child: Column<u32>,
    /// Number of children (0 for leaves).
    child_count: Column<u32>,
    /// Released per-node counts, arena order.
    counts: Column<f64>,
    label: &'static str,
}

impl FrozenSynopsis {
    /// Flatten a released tree + arena-aligned counts.
    pub fn from_tree(tree: &Tree<Rect>, counts: &[f64], label: &'static str) -> Self {
        assert_eq!(tree.len(), counts.len(), "one count per node");
        let n = tree.len();
        let dims = tree.payload(tree.root()).dims();
        let mut lo = Vec::with_capacity(n * dims);
        let mut hi = Vec::with_capacity(n * dims);
        let mut first_child = Vec::with_capacity(n);
        let mut child_count = Vec::with_capacity(n);
        for id in tree.ids() {
            let rect = tree.payload(id);
            debug_assert_eq!(rect.dims(), dims, "mixed dimensionality");
            lo.extend_from_slice(rect.lo());
            hi.extend_from_slice(rect.hi());
            let mut kids = tree.children(id);
            match kids.next() {
                Some(first) => {
                    first_child.push(first.index() as u32);
                    child_count.push(1 + kids.count() as u32);
                }
                None => {
                    first_child.push(0);
                    child_count.push(0);
                }
            }
        }
        Self {
            dims,
            lo: lo.into(),
            hi: hi.into(),
            first_child: first_child.into(),
            child_count: child_count.into(),
            counts: counts.to_vec().into(),
            label,
        }
    }

    /// Freeze a tree-walk synopsis.
    pub fn freeze(synopsis: &SpatialSynopsis) -> Self {
        Self::from_tree(synopsis.tree(), synopsis.counts(), synopsis.label())
    }

    /// Number of nodes in the decomposition.
    pub fn node_count(&self) -> usize {
        self.counts.len()
    }

    /// Dimensionality of the domain.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Released per-node counts in arena order.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Lower corner of a node's region.
    pub fn node_lo(&self, index: usize) -> &[f64] {
        &self.lo[index * self.dims..(index + 1) * self.dims]
    }

    /// Upper corner of a node's region.
    pub fn node_hi(&self, index: usize) -> &[f64] {
        &self.hi[index * self.dims..(index + 1) * self.dims]
    }

    /// Arena index of each node's first child (0 for leaves). Together
    /// with [`FrozenSynopsis::child_count`] this is the whole tree
    /// structure — serializers persist exactly these arrays.
    pub fn first_child(&self) -> &[u32] {
        &self.first_child
    }

    /// Number of children per node (0 for leaves).
    pub fn child_count(&self) -> &[u32] {
        &self.child_count
    }

    /// Packed lower corners, `dims` coordinates per node in arena order
    /// (the raw column a serializer writes).
    pub fn lo_coords(&self) -> &[f64] {
        &self.lo
    }

    /// Packed upper corners, `dims` coordinates per node in arena order.
    pub fn hi_coords(&self) -> &[f64] {
        &self.hi
    }

    /// Whether any column borrows external storage (a mapped release
    /// file) instead of owning its elements.
    pub fn borrows_storage(&self) -> bool {
        self.lo.is_borrowed()
            || self.hi.is_borrowed()
            || self.first_child.is_borrowed()
            || self.child_count.is_borrowed()
            || self.counts.is_borrowed()
    }

    /// Assemble a frozen synopsis from untrusted flat arrays, validating
    /// every structural invariant the read path relies on: array lengths,
    /// finite `lo <= hi` boxes, and child ranges that are contiguous,
    /// parent-before-child, and tile nodes `1..n` exactly once (leaves
    /// must carry `first_child == 0`, the canonical form
    /// [`FrozenSynopsis::from_tree`] produces). This is the deserializer
    /// entry point — a corrupt file becomes a [`FlatLayoutError`], never
    /// a panic inside a traversal.
    ///
    /// The arrays may be owned `Vec`s or [`Column`]s borrowing a mapped
    /// release file — validation reads through the same slice view
    /// either way.
    #[allow(clippy::too_many_arguments)]
    pub fn from_flat_parts(
        dims: usize,
        lo: impl Into<Column<f64>>,
        hi: impl Into<Column<f64>>,
        first_child: impl Into<Column<u32>>,
        child_count: impl Into<Column<u32>>,
        counts: impl Into<Column<f64>>,
        label: &'static str,
    ) -> Result<Self, FlatLayoutError> {
        let (lo, hi) = (lo.into(), hi.into());
        let (first_child, child_count) = (first_child.into(), child_count.into());
        let counts = counts.into();
        let n = counts.len();
        if n == 0 {
            return Err(FlatLayoutError::Empty);
        }
        if dims == 0 || dims > crate::MAX_DIMS {
            return Err(FlatLayoutError::BadDims { dims });
        }
        for (array, found) in [("lo", lo.len()), ("hi", hi.len())] {
            if found != n * dims {
                return Err(FlatLayoutError::LengthMismatch {
                    array,
                    expected: n * dims,
                    found,
                });
            }
        }
        for (array, found) in [
            ("first_child", first_child.len()),
            ("child_count", child_count.len()),
        ] {
            if found != n {
                return Err(FlatLayoutError::LengthMismatch {
                    array,
                    expected: n,
                    found,
                });
            }
        }
        for i in 0..n {
            let ok = (0..dims).all(|k| {
                let (a, b) = (lo[i * dims + k], hi[i * dims + k]);
                a.is_finite() && b.is_finite() && a <= b
            });
            if !ok {
                return Err(FlatLayoutError::BadGeometry { node: i });
            }
        }
        // the child ranges of internal nodes, sorted by range start, must
        // tile [1, n) exactly, and each must start after its parent —
        // together that makes every node reachable from the root with no
        // cycles, which is all the iterative traversals assume
        let mut internal: Vec<usize> = (0..n).filter(|&i| child_count[i] > 0).collect();
        internal.sort_unstable_by_key(|&i| first_child[i]);
        let mut next = 1u64;
        for &i in &internal {
            let (first, kids) = (first_child[i] as u64, child_count[i] as u64);
            if first != next {
                return Err(FlatLayoutError::BadChildRange {
                    node: i,
                    reason: format!("children start at {first}, expected {next}"),
                });
            }
            if first <= i as u64 {
                return Err(FlatLayoutError::BadChildRange {
                    node: i,
                    reason: "parent appears after its children".into(),
                });
            }
            next = first + kids;
            if next > n as u64 {
                return Err(FlatLayoutError::BadChildRange {
                    node: i,
                    reason: format!("child range ends at {next}, past the {n}-node arena"),
                });
            }
        }
        if next != n as u64 {
            return Err(FlatLayoutError::BadChildRange {
                node: 0,
                reason: format!("child ranges cover nodes 1..{next}, arena holds {n}"),
            });
        }
        for i in 0..n {
            if child_count[i] == 0 && first_child[i] != 0 {
                return Err(FlatLayoutError::BadChildRange {
                    node: i,
                    reason: "leaf with a non-zero first_child".into(),
                });
            }
        }
        Ok(Self::from_raw(
            dims,
            lo,
            hi,
            first_child,
            child_count,
            counts,
            label,
        ))
    }

    /// Assemble a frozen synopsis directly from its flat arrays (the
    /// sharded re-layout builds sub-arenas this way).
    pub(crate) fn from_raw(
        dims: usize,
        lo: impl Into<Column<f64>>,
        hi: impl Into<Column<f64>>,
        first_child: impl Into<Column<u32>>,
        child_count: impl Into<Column<u32>>,
        counts: impl Into<Column<f64>>,
        label: &'static str,
    ) -> Self {
        let (lo, hi) = (lo.into(), hi.into());
        let (first_child, child_count) = (first_child.into(), child_count.into());
        let counts = counts.into();
        debug_assert_eq!(lo.len(), counts.len() * dims);
        debug_assert_eq!(hi.len(), counts.len() * dims);
        debug_assert_eq!(first_child.len(), counts.len());
        debug_assert_eq!(child_count.len(), counts.len());
        Self {
            dims,
            lo,
            hi,
            first_child,
            child_count,
            counts,
            label,
        }
    }

    /// Reconstruct the pointer-walk synopsis (exact inverse of
    /// [`FrozenSynopsis::freeze`], same arena order).
    pub fn thaw(&self) -> SpatialSynopsis {
        let rect_of = |i: usize| Rect::new(self.node_lo(i), self.node_hi(i));
        let mut tree = Tree::with_root(rect_of(0));
        // child blocks are appended in ascending first_child order, which
        // reproduces the original arena layout exactly
        let mut internal: Vec<usize> = (0..self.node_count())
            .filter(|&i| self.child_count[i] > 0)
            .collect();
        internal.sort_unstable_by_key(|&i| self.first_child[i]);
        for parent in internal {
            let first = self.first_child[parent] as usize;
            let count = self.child_count[parent] as usize;
            let children: Vec<Rect> = (first..first + count).map(rect_of).collect();
            let ids = tree.add_children(NodeId::from_index(parent), children);
            assert_eq!(
                ids.first().map(|id| id.index()),
                Some(first),
                "frozen child ranges are not a valid arena layout"
            );
        }
        SpatialSynopsis::from_parts(tree, self.counts.to_vec(), self.label)
    }

    /// Case 1 vs case 2 vs cases 3/4 of the Section 2.2 traversal for
    /// node `i` against the query box. This predicate (and
    /// [`FrozenSynopsis::leaf_contribution`]) is the single copy of the
    /// float-critical per-node logic: the frozen walk and the sharded
    /// top walk both build on it, so their bit-identity contract cannot
    /// drift apart.
    #[inline]
    pub(crate) fn classify(&self, i: usize, qlo: &[f64], qhi: &[f64]) -> Overlap {
        dispatch_dims!(self.dims, D => self.classify_d::<D>(i, qlo, qhi))
    }

    /// [`FrozenSynopsis::classify`] monomorphized on the dimensionality
    /// so the per-dimension compares unroll (this predicate runs once
    /// per visited node — it is *the* hot instruction stream of every
    /// read engine). Same compares in the same order as the dynamic
    /// wrapper, so which instantiation runs never affects a result.
    #[inline]
    pub(crate) fn classify_d<const D: usize>(&self, i: usize, qlo: &[f64], qhi: &[f64]) -> Overlap {
        debug_assert_eq!(self.dims, D);
        let nlo = &self.lo[i * D..(i + 1) * D];
        let nhi = &self.hi[i * D..(i + 1) * D];
        // case 1: disjoint (shared edges do not overlap)
        if (0..D).any(|k| nlo[k] >= qhi[k] || qlo[k] >= nhi[k]) {
            return Overlap::Disjoint;
        }
        // case 2: node fully inside the query
        if (0..D).all(|k| nlo[k] >= qlo[k] && nhi[k] <= qhi[k]) {
            return Overlap::Contained;
        }
        Overlap::Partial
    }

    /// Case 4: the uniform-assumption contribution of a partially
    /// overlapped leaf, or `None` for a degenerate (zero-volume) box.
    #[inline]
    pub(crate) fn leaf_contribution(&self, i: usize, qlo: &[f64], qhi: &[f64]) -> Option<f64> {
        dispatch_dims!(self.dims, D => self.leaf_contribution_d::<D>(i, qlo, qhi))
    }

    /// [`FrozenSynopsis::leaf_contribution`] monomorphized like
    /// [`FrozenSynopsis::classify_d`]: identical multiplies in identical
    /// order, just unrolled.
    #[inline]
    pub(crate) fn leaf_contribution_d<const D: usize>(
        &self,
        i: usize,
        qlo: &[f64],
        qhi: &[f64],
    ) -> Option<f64> {
        debug_assert_eq!(self.dims, D);
        let nlo = &self.lo[i * D..(i + 1) * D];
        let nhi = &self.hi[i * D..(i + 1) * D];
        let mut volume = 1.0;
        let mut overlap = 1.0;
        for k in 0..D {
            volume *= nhi[k] - nlo[k];
            overlap *= nhi[k].min(qhi[k]) - nlo[k].max(qlo[k]);
        }
        (volume > 0.0).then(|| self.counts[i] * overlap / volume)
    }

    /// The Section 2.2 traversal over the flat arrays, with a
    /// caller-provided stack so batches allocate nothing per query, and a
    /// caller-provided starting accumulator. The carried accumulator is
    /// what lets [`crate::sharded::ShardedSynopsis`] splice a shard
    /// descent into its top-level walk and stay bit-identical to the
    /// unsharded traversal: every contribution is applied with `+=` in
    /// the same order either way.
    pub(crate) fn accumulate(&self, q: &Rect, stack: &mut Vec<u32>, init: f64) -> f64 {
        debug_assert_eq!(q.dims(), self.dims);
        self.accumulate_span(0, q.lo(), q.hi(), stack, init)
    }

    /// [`FrozenSynopsis::accumulate`] generalized to an **anchored
    /// entry**: the traversal starts at arena node `start` instead of the
    /// root, and the query box arrives as raw `lo`/`hi` spans (the
    /// grid-routed shell walk synthesizes per-cell boxes without paying
    /// [`Rect::new`]'s validation).
    ///
    /// When `start` is an *anchor* of a cell — the deepest node whose box
    /// fully covers it, with every off-path sibling disjoint from the
    /// cell (see [`crate::grid_route`]) — this is **bit-identical** to
    /// `accumulate_span(0, ...)` for any query box inside the cell:
    /// every skipped ancestor classifies as `Partial` (contributing
    /// nothing) and every skipped sibling as `Disjoint`, so the `+=`
    /// sequence is exactly the root traversal's.
    pub(crate) fn accumulate_span(
        &self,
        start: u32,
        qlo: &[f64],
        qhi: &[f64],
        stack: &mut Vec<u32>,
        init: f64,
    ) -> f64 {
        dispatch_dims!(self.dims, D => self.accumulate_span_d::<D>(start, qlo, qhi, stack, init))
    }

    /// [`FrozenSynopsis::accumulate_span`] monomorphized on the
    /// dimensionality (same walk, unrolled per-node compares).
    pub(crate) fn accumulate_span_d<const D: usize>(
        &self,
        start: u32,
        qlo: &[f64],
        qhi: &[f64],
        stack: &mut Vec<u32>,
        init: f64,
    ) -> f64 {
        let mut acc = init;
        stack.clear();
        stack.push(start);
        while let Some(v) = stack.pop() {
            let i = v as usize;
            match self.classify_d::<D>(i, qlo, qhi) {
                Overlap::Disjoint => {}
                Overlap::Contained => acc += self.counts[i],
                Overlap::Partial => {
                    let children = self.child_count[i];
                    if children > 0 {
                        // case 3: partial overlap, internal — visit
                        // children in arena order (pushed reversed so
                        // they pop in order, keeping the summation order
                        // of the tree walk)
                        let first = self.first_child[i];
                        for c in (first..first + children).rev() {
                            stack.push(c);
                        }
                    } else if let Some(c) = self.leaf_contribution_d::<D>(i, qlo, qhi) {
                        acc += c;
                    }
                }
            }
        }
        acc
    }

    /// Answer `q` with the traversal entered at arena node `start`
    /// (`start = 0` is [`RangeCountSynopsis::answer`]). This is the
    /// public face of the anchored entry the grid-routed engine uses for
    /// its boundary shell; exposed so the bit-identity contract —
    /// anchored answers equal root answers exactly when `start` covers
    /// the query — can be pinned from integration tests.
    ///
    /// Panics if `start` is out of bounds.
    pub fn answer_from(&self, start: usize, q: &RangeQuery) -> f64 {
        assert!(start < self.node_count(), "start node out of bounds");
        debug_assert_eq!(q.rect.dims(), self.dims);
        with_query_scratch(|stack, _| {
            self.accumulate_span(start as u32, q.rect.lo(), q.rect.hi(), stack, 0.0)
        })
    }

    /// Answer a workload on the calling thread with one reused traversal
    /// stack. This is the single-worker reference the pooled path is
    /// property-tested against.
    pub fn answer_batch_sequential(&self, queries: &[RangeQuery]) -> Vec<f64> {
        let mut stack = Vec::with_capacity(64);
        queries
            .iter()
            .map(|q| self.accumulate(&q.rect, &mut stack, 0.0))
            .collect()
    }

    /// Answer a workload chunked across `pool`, one traversal stack per
    /// chunk (so a worker allocates once per chunk, not per query).
    /// Results come back in input order and each query is computed by
    /// exactly the same float operations as the sequential path, so the
    /// output is bit-identical to [`FrozenSynopsis::answer_batch_sequential`]
    /// for every worker count.
    pub fn answer_batch_with_pool(&self, queries: &[RangeQuery], pool: &WorkerPool) -> Vec<f64> {
        dispatch_batch(queries, pool, |chunk| self.answer_batch_sequential(chunk))
    }
}

impl RangeCountSynopsis for FrozenSynopsis {
    fn answer(&self, q: &RangeQuery) -> f64 {
        with_query_scratch(|stack, _| self.accumulate(&q.rect, stack, 0.0))
    }

    fn answer_batch(&self, queries: &[RangeQuery]) -> Vec<f64> {
        #[cfg(feature = "parallel")]
        {
            let pool = privtree_runtime::global();
            if pool.workers() > 1 && queries.len() >= BATCH_PARALLEL_THRESHOLD {
                return self.answer_batch_with_pool(queries, pool);
            }
        }
        self.answer_batch_sequential(queries)
    }

    fn label(&self) -> &'static str {
        self.label
    }
}

/// The shared global pool engages on `answer_batch` only for workloads at
/// least this large; below it dispatch overhead beats the win.
#[cfg(feature = "parallel")]
pub(crate) const BATCH_PARALLEL_THRESHOLD: usize = 512;

impl From<&SpatialSynopsis> for FrozenSynopsis {
    fn from(synopsis: &SpatialSynopsis) -> Self {
        Self::freeze(synopsis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PointSet;
    use crate::quadtree::SplitConfig;
    use crate::synopsis::{exact_synopsis, privtree_synopsis};
    use privtree_dp::budget::Epsilon;
    use privtree_dp::rng::seeded;
    use rand::RngExt;

    fn clustered(n: usize, seed: u64) -> PointSet {
        let mut rng = seeded(seed);
        let mut ps = PointSet::new(2);
        for i in 0..n {
            if i % 7 == 0 {
                ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
            } else {
                ps.push(&[
                    0.3 + rng.random::<f64>() * 0.05,
                    0.6 + rng.random::<f64>() * 0.05,
                ]);
            }
        }
        ps
    }

    fn sample_synopsis(seed: u64) -> SpatialSynopsis {
        privtree_synopsis(
            &clustered(4000, seed),
            Rect::unit(2),
            SplitConfig::full(2),
            Epsilon::new(1.0).unwrap(),
            &mut seeded(seed),
        )
        .unwrap()
    }

    fn random_queries(n: usize, seed: u64) -> Vec<RangeQuery> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| {
                let cx = rng.random::<f64>() * 0.8;
                let cy = rng.random::<f64>() * 0.8;
                let w = 0.01 + rng.random::<f64>() * 0.2;
                RangeQuery::new(Rect::new(&[cx, cy], &[cx + w, cy + w]))
            })
            .collect()
    }

    #[test]
    fn frozen_matches_tree_walk() {
        let syn = sample_synopsis(1);
        let frozen = FrozenSynopsis::freeze(&syn);
        assert_eq!(frozen.node_count(), syn.node_count());
        for q in random_queries(200, 2) {
            let a = syn.answer(&q);
            let b = frozen.answer(&q);
            assert!((a - b).abs() < 1e-9, "tree {a} vs frozen {b} on {}", q.rect);
        }
    }

    #[test]
    fn answer_batch_matches_answer() {
        let frozen = FrozenSynopsis::freeze(&sample_synopsis(3));
        let queries = random_queries(128, 4);
        let batch = frozen.answer_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(frozen.answer(q), *b, "batch diverges on {}", q.rect);
        }
    }

    #[test]
    fn thaw_round_trips_exactly() {
        let syn = sample_synopsis(5);
        let frozen = FrozenSynopsis::freeze(&syn);
        let thawed = frozen.thaw();
        assert_eq!(thawed.node_count(), syn.node_count());
        assert_eq!(thawed.counts(), syn.counts());
        let tree_a = syn.tree();
        let tree_b = thawed.tree();
        for id in tree_a.ids() {
            assert_eq!(tree_a.payload(id), tree_b.payload(id));
            assert_eq!(tree_a.parent(id), tree_b.parent(id));
            assert_eq!(
                tree_a.children(id).collect::<Vec<_>>(),
                tree_b.children(id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn exact_synopsis_stays_exact_when_frozen() {
        let ps = clustered(3000, 9);
        let syn = exact_synopsis(&ps, Rect::unit(2), SplitConfig::full(2), 20.0, None);
        let frozen = FrozenSynopsis::freeze(&syn);
        for q in [
            Rect::new(&[0.0, 0.0], &[0.5, 0.5]),
            Rect::new(&[0.25, 0.5], &[0.5, 0.75]),
            Rect::unit(2),
        ] {
            let est = frozen.answer(&RangeQuery::new(q));
            let truth = ps.count_in(&q) as f64;
            assert!((est - truth).abs() < 1e-9, "query {q}: {est} vs {truth}");
        }
    }

    #[test]
    fn query_scratch_supports_nested_use() {
        // an engine's `answer` may consult another engine from inside the
        // scratch closure (reentrancy); the pool hands out distinct
        // stacks per nesting level instead of double-borrowing
        let frozen = FrozenSynopsis::freeze(&sample_synopsis(13));
        let q = RangeQuery::new(Rect::new(&[0.1, 0.2], &[0.6, 0.7]));
        let direct = frozen.answer(&q);
        let nested = with_query_scratch(|outer_top, outer_shard| {
            outer_top.push(7); // sentinel state that must survive the nested call
            outer_shard.push(9);
            let inner = frozen.answer(&q); // re-enters with_query_scratch
            assert_eq!(outer_top.as_slice(), &[7]);
            assert_eq!(outer_shard.as_slice(), &[9]);
            inner
        });
        assert_eq!(direct.to_bits(), nested.to_bits());
        // two levels deep for good measure
        let deep = with_query_scratch(|_, _| with_query_scratch(|_, _| frozen.answer(&q)));
        assert_eq!(direct.to_bits(), deep.to_bits());
    }

    #[test]
    fn answer_from_root_matches_answer() {
        let frozen = FrozenSynopsis::freeze(&sample_synopsis(17));
        for q in random_queries(50, 18) {
            assert_eq!(
                frozen.answer(&q).to_bits(),
                frozen.answer_from(0, &q).to_bits()
            );
        }
    }

    #[test]
    fn single_node_release() {
        let tree = Tree::with_root(Rect::unit(2));
        let frozen = FrozenSynopsis::from_tree(&tree, &[7.5], "tiny");
        let whole = frozen.answer(&RangeQuery::new(Rect::unit(2)));
        assert_eq!(whole, 7.5);
        let half = frozen.answer(&RangeQuery::new(Rect::new(&[0.0, 0.0], &[0.5, 1.0])));
        assert!((half - 3.75).abs() < 1e-12, "uniform scaling on the root");
        let thawed = frozen.thaw();
        assert_eq!(thawed.node_count(), 1);
    }
}
