//! Flat storage for multi-dimensional point datasets.

use crate::geom::Rect;

/// A set of d-dimensional points stored in one contiguous buffer
/// (`coords[i*d .. (i+1)*d]` is point `i`). This is the `D` of the paper's
/// spatial experiments: up to 1.6M points for the road-like dataset.
#[derive(Debug, Clone)]
pub struct PointSet {
    coords: Vec<f64>,
    dims: usize,
}

impl PointSet {
    /// An empty dataset of the given dimensionality.
    pub fn new(dims: usize) -> Self {
        assert!((1..=crate::MAX_DIMS).contains(&dims));
        Self {
            coords: Vec::new(),
            dims,
        }
    }

    /// Build from a flat coordinate buffer (length must be a multiple of
    /// `dims`).
    pub fn from_flat(dims: usize, coords: Vec<f64>) -> Self {
        assert!((1..=crate::MAX_DIMS).contains(&dims));
        assert_eq!(
            coords.len() % dims,
            0,
            "flat buffer length not a multiple of dims"
        );
        Self { coords, dims }
    }

    /// Append one point.
    pub fn push(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dims);
        self.coords.extend_from_slice(p);
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dims
    }

    /// `true` iff there are no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality d.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dims..(i + 1) * self.dims]
    }

    /// Iterate over all points.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.coords.chunks_exact(self.dims)
    }

    /// The tightest half-open box containing every point (upper edges are
    /// nudged up so boundary points stay inside). `None` when empty.
    pub fn bounding_box(&self) -> Option<Rect> {
        if self.is_empty() {
            return None;
        }
        let d = self.dims;
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for p in self.iter() {
            for k in 0..d {
                lo[k] = lo[k].min(p[k]);
                hi[k] = hi[k].max(p[k]);
            }
        }
        for k in 0..d {
            // widen so max-coordinate points satisfy the half-open bound
            let widened = hi[k] + (hi[k] - lo[k]) * 1e-9;
            hi[k] = if widened > hi[k] {
                widened
            } else {
                hi[k].next_up()
            };
        }
        Some(Rect::new(&lo, &hi))
    }

    /// Exact number of points inside `q`, by linear scan — the reference
    /// the [`crate::index::GridIndex`] is validated against.
    pub fn count_in(&self, q: &Rect) -> usize {
        self.iter().filter(|p| q.contains_point(p)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointSet {
        PointSet::from_flat(2, vec![0.1, 0.1, 0.9, 0.9, 0.5, 0.5, 0.1, 0.9])
    }

    #[test]
    fn basic_accessors() {
        let ps = sample();
        assert_eq!(ps.len(), 4);
        assert_eq!(ps.dims(), 2);
        assert_eq!(ps.point(1), &[0.9, 0.9]);
        assert_eq!(ps.iter().count(), 4);
    }

    #[test]
    fn push_grows() {
        let mut ps = PointSet::new(3);
        assert!(ps.is_empty());
        ps.push(&[1.0, 2.0, 3.0]);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.point(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn push_wrong_dims_panics() {
        let mut ps = PointSet::new(2);
        ps.push(&[1.0]);
    }

    #[test]
    fn bounding_box_contains_all_points() {
        let ps = sample();
        let bb = ps.bounding_box().unwrap();
        for p in ps.iter() {
            assert!(bb.contains_point(p), "{p:?} outside {bb}");
        }
        assert!(PointSet::new(2).bounding_box().is_none());
    }

    #[test]
    fn bounding_box_of_degenerate_data() {
        // all points identical: the box must still contain them
        let ps = PointSet::from_flat(2, vec![0.5, 0.5, 0.5, 0.5]);
        let bb = ps.bounding_box().unwrap();
        assert!(bb.contains_point(&[0.5, 0.5]));
        assert!(bb.volume() > 0.0);
    }

    #[test]
    fn count_in_rect() {
        let ps = sample();
        let q = Rect::new(&[0.0, 0.0], &[0.5, 0.5]);
        assert_eq!(ps.count_in(&q), 1);
        let all = Rect::new(&[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(ps.count_in(&all), 4);
    }
}
