//! Private spatial synopses and their query answering (Sections 2.2, 3.4).
//!
//! The PrivTree pipeline follows Section 3.4 exactly:
//!
//! 1. build the decomposition tree with PrivTree at ε/2;
//! 2. add `Lap(2/ε)` noise to every **leaf**'s exact point count (ε/2);
//! 3. set every intermediate node's count to the sum of the noisy counts
//!    of the leaves below it (free postprocessing);
//! 4. answer a range-count query `q` with the top-down traversal of
//!    Section 2.2 — disjoint nodes are ignored, fully covered nodes
//!    contribute their count, partially covered internal nodes recurse,
//!    and partially covered leaves contribute `count · |q ∩ dom| / |dom|`
//!    (the uniform assumption).

use privtree_core::counts::{exact_leaf_counts, noisy_leaf_counts};
use privtree_core::domain::TreeDomain;
use privtree_core::params::{PrivTreeParams, SimpleTreeParams};
use privtree_core::privtree::build_privtree;
use privtree_core::simple::build_simple_tree;
use privtree_core::tree::{NodeId, Tree};
use privtree_dp::budget::Epsilon;
use privtree_dp::mechanism::LaplaceMechanism;
use rand::Rng;

use crate::dataset::PointSet;
use crate::geom::Rect;
use crate::quadtree::{QuadDomain, SplitConfig};
use crate::query::{RangeCountSynopsis, RangeQuery};

/// A released spatial synopsis: the decomposition (regions only) plus one
/// count per node.
#[derive(Debug, Clone)]
pub struct SpatialSynopsis {
    tree: Tree<Rect>,
    counts: Vec<f64>,
    label: &'static str,
}

impl SpatialSynopsis {
    /// Assemble a synopsis from a released tree and arena-aligned counts.
    /// Used by other decomposition strategies (e.g. the k-d tree baseline)
    /// that want to reuse the Section 2.2 query traversal.
    pub fn from_parts(tree: Tree<Rect>, counts: Vec<f64>, label: &'static str) -> Self {
        assert_eq!(tree.len(), counts.len(), "one count per node");
        Self {
            tree,
            counts,
            label,
        }
    }

    /// The decomposition tree (region payloads only — point data and raw
    /// scores are never retained, matching Algorithm 2 line 11).
    pub fn tree(&self) -> &Tree<Rect> {
        &self.tree
    }

    /// Per-node counts in arena order.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Number of nodes in the decomposition.
    pub fn node_count(&self) -> usize {
        self.tree.len()
    }

    /// Flatten into the read-optimized [`crate::frozen::FrozenSynopsis`]
    /// for query-heavy serving.
    pub fn freeze(&self) -> crate::frozen::FrozenSynopsis {
        crate::frozen::FrozenSynopsis::freeze(self)
    }

    /// Maximum node depth.
    pub fn max_depth(&self) -> u32 {
        self.tree.max_depth()
    }

    fn node_answer(&self, q: &Rect, v: NodeId) -> f64 {
        let rect = self.tree.payload(v);
        // case 1: disjoint — ignore
        if !rect.intersects(q) {
            return 0.0;
        }
        // case 2: fully contained — use the node's count
        if q.contains_rect(rect) {
            return self.counts[v.index()];
        }
        if !self.tree.is_leaf(v) {
            // case 3: partial overlap, internal — recurse
            self.tree.children(v).map(|c| self.node_answer(q, c)).sum()
        } else {
            // case 4: partial overlap, leaf — uniform assumption
            self.counts[v.index()] * rect.overlap_fraction(q)
        }
    }
}

impl RangeCountSynopsis for SpatialSynopsis {
    fn answer(&self, q: &RangeQuery) -> f64 {
        self.node_answer(&q.rect, self.tree.root())
    }

    fn label(&self) -> &'static str {
        self.label
    }
}

/// Build a PrivTree synopsis with the Section 3.4 ε/2 + ε/2 budget split.
pub fn privtree_synopsis<R: Rng + ?Sized>(
    data: &PointSet,
    root: Rect,
    config: SplitConfig,
    epsilon: Epsilon,
    rng: &mut R,
) -> Result<SpatialSynopsis, Box<dyn std::error::Error>> {
    let (eps_tree, eps_counts) = epsilon.split_two(0.5)?;
    let domain = QuadDomain::new(data, root, config);
    let params = PrivTreeParams::from_epsilon(eps_tree, domain.fanout())?;
    privtree_synopsis_with_params(data, root, config, &params, eps_counts, rng)
}

/// Build a PrivTree synopsis with explicit tree parameters (for the θ and
/// fanout ablations) and a separate count budget.
pub fn privtree_synopsis_with_params<R: Rng + ?Sized>(
    data: &PointSet,
    root: Rect,
    config: SplitConfig,
    tree_params: &PrivTreeParams,
    count_epsilon: Epsilon,
    rng: &mut R,
) -> Result<SpatialSynopsis, Box<dyn std::error::Error>> {
    let mut domain = QuadDomain::new(data, root, config);
    let tree = build_privtree(&mut domain, tree_params, rng)?;
    let mech = LaplaceMechanism::new(count_epsilon, 1.0)?;
    let noisy = noisy_leaf_counts(&tree, &mech, |n| n.count() as f64, rng);
    Ok(SpatialSynopsis {
        tree: tree.map(|_, n| n.rect),
        counts: noisy.as_slice().to_vec(),
        label: "PrivTree",
    })
}

/// Build a SimpleTree (Algorithm 1) synopsis: the per-node noisy counts
/// produced during construction *are* the release (λ = h/ε pays for them).
pub fn simple_tree_synopsis<R: Rng + ?Sized>(
    data: &PointSet,
    root: Rect,
    config: SplitConfig,
    epsilon: Epsilon,
    height: u32,
    theta: f64,
    rng: &mut R,
) -> Result<SpatialSynopsis, Box<dyn std::error::Error>> {
    let mut domain = QuadDomain::new(data, root, config);
    let params = SimpleTreeParams::from_epsilon(epsilon, height, theta)?;
    let out = build_simple_tree(&mut domain, &params, rng)?;
    Ok(SpatialSynopsis {
        tree: out.tree.map(|_, n| n.rect),
        counts: out.noisy_counts,
        label: "SimpleTree",
    })
}

/// A noise-free synopsis (ground-truth decomposition + exact counts); used
/// in tests and as the `Truncate`-style reference.
pub fn exact_synopsis(
    data: &PointSet,
    root: Rect,
    config: SplitConfig,
    theta: f64,
    max_depth: Option<u32>,
) -> SpatialSynopsis {
    let mut domain = QuadDomain::new(data, root, config);
    let tree = privtree_core::nonprivate::nonprivate_tree(&mut domain, theta, max_depth);
    let counts = exact_leaf_counts(&tree, |n| n.count() as f64);
    SpatialSynopsis {
        tree: tree.map(|_, n| n.rect),
        counts: counts.as_slice().to_vec(),
        label: "Exact",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_dp::rng::seeded;
    use rand::RngExt;

    fn clustered(n: usize, seed: u64) -> PointSet {
        let mut rng = seeded(seed);
        let mut ps = PointSet::new(2);
        for i in 0..n {
            if i % 10 == 0 {
                ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
            } else {
                // dense cluster near (0.2, 0.3)
                ps.push(&[
                    0.2 + rng.random::<f64>() * 0.02,
                    0.3 + rng.random::<f64>() * 0.02,
                ]);
            }
        }
        ps
    }

    #[test]
    fn exact_synopsis_answers_exactly_on_aligned_queries() {
        let ps = clustered(2000, 1);
        let syn = exact_synopsis(&ps, Rect::unit(2), SplitConfig::full(2), 10.0, None);
        // dyadic queries align with tree cells, so case 4 never triggers
        for q in [
            Rect::new(&[0.0, 0.0], &[0.5, 0.5]),
            Rect::new(&[0.5, 0.5], &[1.0, 1.0]),
            Rect::new(&[0.0, 0.0], &[1.0, 1.0]),
            Rect::new(&[0.25, 0.25], &[0.5, 0.5]),
        ] {
            let est = syn.answer(&RangeQuery::new(q));
            let truth = ps.count_in(&q) as f64;
            assert!(
                (est - truth).abs() < 1e-9,
                "query {q}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn exact_synopsis_uniform_assumption_on_unaligned_queries() {
        // uniform data: partial-leaf scaling should land near the truth
        let mut rng = seeded(2);
        let mut ps = PointSet::new(2);
        for _ in 0..20_000 {
            ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
        }
        let syn = exact_synopsis(&ps, Rect::unit(2), SplitConfig::full(2), 500.0, None);
        let q = Rect::new(&[0.13, 0.27], &[0.52, 0.61]);
        let est = syn.answer(&RangeQuery::new(q));
        let truth = ps.count_in(&q) as f64;
        assert!(
            (est - truth).abs() / truth < 0.05,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn privtree_synopsis_total_near_cardinality() {
        let ps = clustered(5000, 3);
        let syn = privtree_synopsis(
            &ps,
            Rect::unit(2),
            SplitConfig::full(2),
            Epsilon::new(1.0).unwrap(),
            &mut seeded(4),
        )
        .unwrap();
        let total = syn.answer(&RangeQuery::new(Rect::unit(2)));
        assert!(
            (total - 5000.0).abs() < 500.0,
            "total = {total}, expected ≈ 5000"
        );
    }

    #[test]
    fn privtree_beats_simple_tree_on_skewed_data() {
        // the paper's headline on a miniature: average relative error of
        // PrivTree should be below a height-limited SimpleTree on skewed data
        let ps = clustered(20_000, 5);
        let eps = Epsilon::new(0.5).unwrap();
        let queries: Vec<RangeQuery> = {
            let mut rng = seeded(6);
            (0..60)
                .map(|_| {
                    let cx = rng.random::<f64>() * 0.9;
                    let cy = rng.random::<f64>() * 0.9;
                    RangeQuery::new(Rect::new(&[cx, cy], &[cx + 0.1, cy + 0.1]))
                })
                .collect()
        };
        let truth: Vec<f64> = queries
            .iter()
            .map(|q| ps.count_in(&q.rect) as f64)
            .collect();
        let smooth = 0.001 * ps.len() as f64;

        let avg_err = |syn: &SpatialSynopsis| -> f64 {
            queries
                .iter()
                .zip(&truth)
                .map(|(q, t)| (syn.answer(q) - t).abs() / t.max(smooth))
                .sum::<f64>()
                / queries.len() as f64
        };

        let mut pt_err = 0.0;
        let mut st_err = 0.0;
        let reps = 5;
        for rep in 0..reps {
            let pt = privtree_synopsis(
                &ps,
                Rect::unit(2),
                SplitConfig::full(2),
                eps,
                &mut seeded(100 + rep),
            )
            .unwrap();
            let st = simple_tree_synopsis(
                &ps,
                Rect::unit(2),
                SplitConfig::full(2),
                eps,
                5,
                (2.0 * 5.0 / eps.get()) * 2.0_f64.sqrt(),
                &mut seeded(200 + rep),
            )
            .unwrap();
            pt_err += avg_err(&pt);
            st_err += avg_err(&st);
        }
        assert!(
            pt_err < st_err,
            "PrivTree err {pt_err} not below SimpleTree err {st_err}"
        );
    }

    #[test]
    fn synopsis_is_deterministic_given_seed() {
        let ps = clustered(1000, 7);
        let build = |seed| {
            privtree_synopsis(
                &ps,
                Rect::unit(2),
                SplitConfig::full(2),
                Epsilon::new(1.0).unwrap(),
                &mut seeded(seed),
            )
            .unwrap()
        };
        let a = build(42);
        let b = build(42);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn internal_counts_are_leaf_sums() {
        let ps = clustered(3000, 8);
        let syn = privtree_synopsis(
            &ps,
            Rect::unit(2),
            SplitConfig::full(2),
            Epsilon::new(1.0).unwrap(),
            &mut seeded(9),
        )
        .unwrap();
        let tree = syn.tree();
        for v in tree.internal_ids() {
            let kid_sum: f64 = tree.children(v).map(|c| syn.counts()[c.index()]).sum();
            assert!((syn.counts()[v.index()] - kid_sum).abs() < 1e-9);
        }
    }
}
