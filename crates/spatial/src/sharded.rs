//! Sharded frozen serving: many arenas, one query surface.
//!
//! A production deployment rarely serves a single monolithic release.
//! Releases arrive per **epoch** or per **region**, and even one huge
//! release is easier to hold as bounded-size pieces. [`ShardedSynopsis`]
//! keeps *one frozen arena per shard* plus a small **top arena** that
//! routes queries by domain: the top is traversed like any frozen
//! synopsis, and where it reaches a shard-backed leaf whose region
//! overlaps the query, the matching shard arena is descended with the
//! *carried accumulator*. Shards whose regions are disjoint from the
//! query are never touched — that is the routing.
//!
//! Shards are held as [`ShardHandle`]s — reference-counted pairs of a
//! frozen arena and an optional per-shard [`CellGrid`] — so an
//! epoch-lifecycle layer (see the `privtree-engine` crate) can replace
//! one shard and rebuild **only** the small routing arena: every
//! untouched handle is reused by pointer, its grid included. Cloning a
//! handle is two `Arc` bumps, never a copy of node arrays.
//!
//! Three constructions:
//!
//! * [`ShardedSynopsis::from_frozen`] re-layouts one existing release,
//!   cutting its tree at a chosen depth; every subtree below the cut
//!   becomes its own arena. Because the carried accumulator preserves the
//!   exact `+=` order of the unsharded DFS (a cut node's whole subtree is
//!   consumed before the walk resumes above it), answers are
//!   **bit-identical** to the original [`FrozenSynopsis`] — not merely
//!   close — which `tests/serving.rs` property-tests.
//! * [`ShardedSynopsis::from_releases`] assembles independent releases
//!   over pairwise-disjoint regions (the epoch/region case) under a
//!   synthetic root whose count is the sum of the shard root counts.
//! * [`ShardedSynopsis::from_handles`] is the same assembly over
//!   already-shared handles — the incremental-rebuild entry point: only
//!   the routing arena (one synthetic root plus one leaf per shard) is
//!   constructed; arenas and grids are adopted as-is.
//!
//! Construction failures ([`ShardError`]: empty shard set, mixed
//! dimensionalities, overlapping regions) are reported as values, not
//! panics.
//!
//! Batches go through the same worker-pool chunking as
//! [`FrozenSynopsis::answer_batch`], with a pair of per-chunk traversal
//! stacks ([`ShardedSynopsis::answer_batch_with_pool`]).
//!
//! Shard descents can additionally be **grid-routed**
//! ([`ShardedSynopsis::with_shard_grids`]): each shard arena gets its own
//! [`crate::grid_route::CellGrid`], so the heavy part of a query — the
//! walk inside the shard the query lands on — resolves through
//! summed-area interior lookups plus cell-anchored boundary traversals.
//! Grid-routed shard answers match the plain descent to float
//! reassociation error (≤ 1e-9 relative; the bit-identity pin applies to
//! the *ungridded* configuration).

use std::sync::{Arc, OnceLock};

use privtree_runtime::WorkerPool;

#[cfg(feature = "parallel")]
use crate::frozen::BATCH_PARALLEL_THRESHOLD;
use crate::frozen::{with_query_scratch, FrozenSynopsis, Overlap};
use crate::geom::Rect;
use crate::grid_route::{CellGrid, CellGridParts, GridRouteError, GridRoutedSynopsis};
use crate::query::{RangeCountSynopsis, RangeQuery};

/// Sentinel in `shard_ref` for top nodes not backed by a shard.
const NO_SHARD: u32 = u32::MAX;

/// Why a sharded synopsis could not be assembled.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// No shards were supplied — there is nothing to serve.
    Empty,
    /// Shard arenas disagree on the domain's dimensionality.
    MixedDims { expected: usize, found: usize },
    /// Two shard regions overlap, so a query inside the overlap would be
    /// double-counted (regions are half-open; shared edges are fine).
    OverlappingRegions { a: String, b: String },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Empty => write!(f, "at least one shard release is required"),
            ShardError::MixedDims { expected, found } => {
                write!(
                    f,
                    "mixed shard dimensionality: expected {expected}, found {found}"
                )
            }
            ShardError::OverlappingRegions { a, b } => {
                write!(f, "shard regions {a} and {b} overlap")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// One shard of a sharded synopsis: a reference-counted frozen arena plus
/// an optional reference-counted routing grid. Handles are how the
/// epoch-lifecycle layer shares untouched shards across rebuilds — two
/// synopses holding the same handle serve the exact same arrays, and
/// `Arc::ptr_eq` on [`ShardHandle::arena_arc`]/[`ShardHandle::grid`]
/// proves (in tests) that a swap did not recompute them.
#[derive(Debug, Clone)]
pub struct ShardHandle {
    arena: Arc<FrozenSynopsis>,
    grid: Option<Arc<CellGrid>>,
    /// Grid columns shipped with a zero-copy release open, assembled
    /// into a [`CellGrid`] at most once, on first use. Shared across
    /// handle clones so snapshots taken before and after the first query
    /// route through the same grid.
    staged: Option<Arc<StagedGrid>>,
    /// Bytes of the memory mapping backing this shard's release file, or
    /// 0 when the release is process-owned.
    mapped_bytes: usize,
}

/// A staged grid: persisted columns plus the once-assembled result.
#[derive(Debug)]
struct StagedGrid {
    parts: CellGridParts,
    /// `None` inside the lock means assembly was attempted and failed
    /// (possible only for releases that bypassed eager validation); the
    /// shard then serves plain arena descents, which are exact.
    assembled: OnceLock<Option<Arc<CellGrid>>>,
}

impl ShardHandle {
    /// Wrap a frozen release as an ungridded shard.
    pub fn new(arena: FrozenSynopsis) -> Self {
        Self::from_arc(Arc::new(arena))
    }

    /// Wrap an already-shared arena as an ungridded shard.
    pub fn from_arc(arena: Arc<FrozenSynopsis>) -> Self {
        Self {
            arena,
            grid: None,
            staged: None,
            mapped_bytes: 0,
        }
    }

    /// Wrap a loaded release — arena plus optional shipped grid — as a
    /// handle: the one constructor every deserialization path (text,
    /// binary, catalog) funnels through. The grid, when present, must
    /// have been built or validated for exactly this arena (see
    /// [`ShardHandle::with_prebuilt_grid`]).
    pub fn from_release(arena: FrozenSynopsis, grid: Option<CellGrid>) -> Self {
        match grid {
            Some(grid) => Self::with_prebuilt_grid(arena, grid),
            None => Self::new(arena),
        }
    }

    /// Wrap a release together with a grid that was already built (or
    /// deserialized) for exactly this arena. The pairing is trusted; a
    /// grid built for a different arena answers garbage, so only pass
    /// grids obtained from this release — e.g. via
    /// [`GridRoutedSynopsis::into_parts`].
    pub fn with_prebuilt_grid(arena: FrozenSynopsis, grid: CellGrid) -> Self {
        Self {
            arena: Arc::new(arena),
            grid: Some(Arc::new(grid)),
            staged: None,
            mapped_bytes: 0,
        }
    }

    /// Wrap a zero-copy release open: the arena (already validated) plus
    /// optionally the persisted grid columns, whose
    /// [`CellGrid::from_parts`] assembly is deferred until the grid is
    /// first used (see [`ShardHandle::grid`]).
    pub fn from_staged(arena: FrozenSynopsis, staged: Option<CellGridParts>) -> Self {
        Self {
            arena: Arc::new(arena),
            grid: None,
            staged: staged.map(|parts| {
                Arc::new(StagedGrid {
                    parts,
                    assembled: OnceLock::new(),
                })
            }),
            mapped_bytes: 0,
        }
    }

    /// Record the size of the memory mapping backing this shard's
    /// release (0 = process-owned storage).
    pub fn with_mapped_bytes(mut self, bytes: usize) -> Self {
        self.mapped_bytes = bytes;
        self
    }

    /// Build this shard's [`CellGrid`] at the default resolution (on
    /// `pool` when given) unless one is already attached or staged. A
    /// staged grid shipped with the release stays staged — it assembles
    /// on first use (see [`ShardHandle::grid`]), which is what keeps a
    /// zero-copy catalog warm start O(map + validate) — and counts as
    /// *not built*, exactly like a grid decoded eagerly. Returns whether
    /// a grid was built — the lifecycle layer's instrumentation counts
    /// these to prove a swap rebuilt only the touched shard.
    pub fn ensure_grid(&mut self, pool: Option<&WorkerPool>) -> Result<bool, GridRouteError> {
        if self.grid.is_some() || self.staged.is_some() {
            return Ok(false);
        }
        let bins = GridRoutedSynopsis::default_bins(&self.arena);
        self.grid = Some(Arc::new(CellGrid::build(&self.arena, &bins, pool)?));
        Ok(true)
    }

    /// Detach the grid, keeping the plain arena.
    pub fn drop_grid(&mut self) {
        self.grid = None;
        self.staged = None;
    }

    /// The shard's frozen arena.
    pub fn arena(&self) -> &FrozenSynopsis {
        &self.arena
    }

    /// The shared arena pointer (for `Arc::ptr_eq` reuse checks).
    pub fn arena_arc(&self) -> &Arc<FrozenSynopsis> {
        &self.arena
    }

    /// The shard's routing grid, when attached or staged.
    ///
    /// A staged grid (zero-copy open) is assembled here on first call —
    /// every later call, on this handle or any clone, returns the same
    /// `Arc`. If assembly fails the shard answers through plain arena
    /// descents (exact, just slower), mirroring an ungridded release.
    pub fn grid(&self) -> Option<&Arc<CellGrid>> {
        if let Some(grid) = self.grid.as_ref() {
            return Some(grid);
        }
        let staged = self.staged.as_ref()?;
        staged
            .assembled
            .get_or_init(|| staged.parts.assemble(&self.arena).ok().map(Arc::new))
            .as_ref()
    }

    /// Bytes of the memory mapping backing this shard's release file
    /// (0 when the release is process-owned).
    pub fn mapped_bytes(&self) -> usize {
        self.mapped_bytes
    }

    /// Whether this shard serves from a memory-mapped release file.
    pub fn is_mapped(&self) -> bool {
        self.mapped_bytes > 0
    }
}

impl From<FrozenSynopsis> for ShardHandle {
    fn from(arena: FrozenSynopsis) -> Self {
        Self::new(arena)
    }
}

/// A collection of frozen arenas served behind one routing arena.
#[derive(Debug, Clone)]
pub struct ShardedSynopsis {
    /// The routing arena: the release's nodes above the cut, with each
    /// cut subtree replaced by a leaf that carries the subtree's root
    /// count and a reference into `shards`.
    top: FrozenSynopsis,
    /// Per top node: index into `shards`, or [`NO_SHARD`].
    shard_ref: Vec<u32>,
    /// One handle (arena + optional grid) per cut subtree / per
    /// independent release.
    shards: Vec<ShardHandle>,
    label: &'static str,
}

/// Extract the sub-arena reachable from `root`, stopping the descent at
/// nodes whose depth equals `stop_depth` (those become leaves of the
/// extracted arena). Returns the new arena's arrays plus, for each new
/// node, its index in the source arena — in the new arena's order, which
/// is a breadth-first re-layout (children blocks stay contiguous).
fn extract_arena(
    src: &FrozenSynopsis,
    root: usize,
    depth_of: &[u32],
    stop_depth: Option<u32>,
) -> (FrozenSynopsis, Vec<usize>) {
    let d = src.dims();
    let src_first = src.first_child();
    let src_kids = src.child_count();
    let mut old_ids: Vec<usize> = vec![root];
    let mut first_child: Vec<u32> = Vec::new();
    let mut child_count: Vec<u32> = Vec::new();
    let mut cursor = 0usize;
    while cursor < old_ids.len() {
        let old = old_ids[cursor];
        let kids = src_kids[old] as usize;
        let stopped = stop_depth.is_some_and(|s| depth_of[old] >= s);
        if kids > 0 && !stopped {
            first_child.push(old_ids.len() as u32);
            child_count.push(kids as u32);
            let first = src_first[old] as usize;
            old_ids.extend(first..first + kids);
        } else {
            first_child.push(0);
            child_count.push(0);
        }
        cursor += 1;
    }
    let mut lo = Vec::with_capacity(old_ids.len() * d);
    let mut hi = Vec::with_capacity(old_ids.len() * d);
    let mut counts = Vec::with_capacity(old_ids.len());
    for &old in &old_ids {
        lo.extend_from_slice(src.node_lo(old));
        hi.extend_from_slice(src.node_hi(old));
        counts.push(src.counts()[old]);
    }
    let arena = FrozenSynopsis::from_raw(d, lo, hi, first_child, child_count, counts, "shard");
    (arena, old_ids)
}

/// Depth of every node of a frozen arena (parents precede children, so a
/// single forward pass suffices).
fn depths(src: &FrozenSynopsis) -> Vec<u32> {
    let mut depth = vec![0u32; src.node_count()];
    let first = src.first_child();
    let kids = src.child_count();
    for i in 0..src.node_count() {
        let k = kids[i] as usize;
        for c in first[i] as usize..first[i] as usize + k {
            depth[c] = depth[i] + 1;
        }
    }
    depth
}

impl ShardedSynopsis {
    /// Re-layout one release into a top arena plus one shard per subtree
    /// rooted at depth `cut_depth` (subtrees that are single leaves stay
    /// in the top). Answers are bit-identical to `frozen`'s.
    ///
    /// The `Result` is part of the uniform construction surface
    /// ([`ShardError`]); a re-layout of a well-formed frozen arena
    /// currently cannot fail, so every error variant is reserved for the
    /// multi-release constructors.
    pub fn from_frozen(frozen: &FrozenSynopsis, cut_depth: u32) -> Result<Self, ShardError> {
        let depth_of = depths(frozen);
        let (top, top_old_ids) = extract_arena(frozen, 0, &depth_of, Some(cut_depth));
        let mut shard_ref = vec![NO_SHARD; top_old_ids.len()];
        let mut shards = Vec::new();
        for (new_id, &old) in top_old_ids.iter().enumerate() {
            if depth_of[old] >= cut_depth && frozen.child_count()[old] > 0 {
                shard_ref[new_id] = shards.len() as u32;
                let (shard, _) = extract_arena(frozen, old, &depth_of, None);
                shards.push(ShardHandle::new(shard));
            }
        }
        Ok(Self {
            top,
            shard_ref,
            shards,
            label: "ShardedSynopsis",
        })
    }

    /// Assemble independent releases over pairwise-disjoint regions under
    /// a synthetic root covering their bounding box; the root's count is
    /// the sum of the shard root counts, so a query covering everything
    /// answers with that aggregate. Queries route to the shards whose
    /// regions they overlap.
    ///
    /// Fails with [`ShardError`] if `shards` is empty, dimensionalities
    /// differ, or two shard regions overlap.
    pub fn from_releases(shards: Vec<FrozenSynopsis>) -> Result<Self, ShardError> {
        Self::from_handles(shards.into_iter().map(ShardHandle::new).collect())
    }

    /// [`ShardedSynopsis::from_releases`] over already-shared
    /// [`ShardHandle`]s: only the routing arena — one synthetic root plus
    /// one shard-backed leaf per handle — is built here; arenas and any
    /// attached grids are adopted by reference. This is what makes an
    /// epoch swap cheap: replace one handle, re-run `from_handles`, and
    /// the rebuilt state is `shards.len() + 1` routing nodes.
    ///
    /// The synthetic root's count sums the shard root counts **in handle
    /// order**, so callers that need bit-identity across rebuilds must
    /// present handles in a canonical order (the engine layer sorts by
    /// release key).
    pub fn from_handles(shards: Vec<ShardHandle>) -> Result<Self, ShardError> {
        if shards.is_empty() {
            return Err(ShardError::Empty);
        }
        let d = shards[0].arena().dims();
        for s in &shards {
            if s.arena().dims() != d {
                return Err(ShardError::MixedDims {
                    expected: d,
                    found: s.arena().dims(),
                });
            }
        }
        let roots: Vec<Rect> = shards
            .iter()
            .map(|s| Rect::new(s.arena().node_lo(0), s.arena().node_hi(0)))
            .collect();
        for i in 0..roots.len() {
            for j in i + 1..roots.len() {
                if roots[i].intersects(&roots[j]) {
                    return Err(ShardError::OverlappingRegions {
                        a: roots[i].to_string(),
                        b: roots[j].to_string(),
                    });
                }
            }
        }
        let mut bbox_lo = roots[0].lo().to_vec();
        let mut bbox_hi = roots[0].hi().to_vec();
        for r in &roots[1..] {
            for k in 0..d {
                bbox_lo[k] = bbox_lo[k].min(r.lo()[k]);
                bbox_hi[k] = bbox_hi[k].max(r.hi()[k]);
            }
        }
        let n = shards.len();
        let mut lo = bbox_lo.clone();
        let mut hi = bbox_hi.clone();
        let mut counts = vec![shards.iter().map(|s| s.arena().counts()[0]).sum::<f64>()];
        let mut first_child = vec![1u32];
        let mut child_count = vec![n as u32];
        for (r, s) in roots.iter().zip(&shards) {
            lo.extend_from_slice(r.lo());
            hi.extend_from_slice(r.hi());
            counts.push(s.arena().counts()[0]);
            first_child.push(0);
            child_count.push(0);
        }
        let top = FrozenSynopsis::from_raw(d, lo, hi, first_child, child_count, counts, "top");
        let mut shard_ref = vec![NO_SHARD; n + 1];
        for (i, r) in shard_ref[1..].iter_mut().enumerate() {
            *r = i as u32;
        }
        Ok(Self {
            top,
            shard_ref,
            shards,
            label: "ShardedSynopsis",
        })
    }

    /// Attach a grid-routed accelerator to every shard arena that does
    /// not already carry one (default per-shard resolution, precomputed
    /// on the shared pool when the `parallel` feature is on). Fails with
    /// [`GridRouteError`] when a shard cannot be grid-routed — e.g.
    /// inconsistent counts — leaving the synopsis unchanged is impossible
    /// at that point, so callers keep the plain configuration by simply
    /// not calling this.
    pub fn with_shard_grids(self) -> Result<Self, GridRouteError> {
        #[cfg(feature = "parallel")]
        let pool = Some(privtree_runtime::global());
        #[cfg(not(feature = "parallel"))]
        let pool = None;
        self.with_shard_grids_and_pool(pool)
    }

    /// [`ShardedSynopsis::with_shard_grids`] pinned to an explicit pool
    /// (`None` precomputes on the calling thread).
    pub fn with_shard_grids_and_pool(
        mut self,
        pool: Option<&WorkerPool>,
    ) -> Result<Self, GridRouteError> {
        for handle in &mut self.shards {
            handle.ensure_grid(pool)?;
        }
        Ok(self)
    }

    /// The per-shard routing grids, when **every** shard carries one
    /// (indexed like [`ShardedSynopsis::shards`]); `None` as soon as any
    /// shard serves the plain descent.
    pub fn shard_grids(&self) -> Option<Vec<&CellGrid>> {
        self.shards
            .iter()
            .map(|h| h.grid().map(Arc::as_ref))
            .collect()
    }

    /// Override the display label.
    pub fn with_label(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }

    /// Number of shard arenas.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard handles (read-only).
    pub fn shards(&self) -> &[ShardHandle] {
        &self.shards
    }

    /// Nodes in the routing arena — the only nodes
    /// [`ShardedSynopsis::from_handles`] actually constructs.
    pub fn routing_node_count(&self) -> usize {
        self.top.node_count()
    }

    /// Total nodes across the top and every shard.
    pub fn node_count(&self) -> usize {
        self.top.node_count()
            + self
                .shards
                .iter()
                .map(|s| s.arena().node_count())
                .sum::<usize>()
    }

    /// Dimensionality of the domain.
    pub fn dims(&self) -> usize {
        self.top.dims()
    }

    /// The Section 2.2 traversal over the top arena, descending into a
    /// shard arena (with the carried accumulator) wherever a shard-backed
    /// leaf partially overlaps the query. Mirrors
    /// [`FrozenSynopsis::accumulate`] case for case, so a re-layout of a
    /// single release answers bit-identically to the original.
    fn accumulate(&self, q: &Rect, top_stack: &mut Vec<u32>, shard_stack: &mut Vec<u32>) -> f64 {
        debug_assert_eq!(q.dims(), self.top.dims());
        let (qlo, qhi) = (q.lo(), q.hi());
        let first = self.top.first_child();
        let kids = self.top.child_count();
        let counts = self.top.counts();
        let mut acc = 0.0;
        top_stack.clear();
        top_stack.push(0);
        while let Some(v) = top_stack.pop() {
            let i = v as usize;
            match self.top.classify(i, qlo, qhi) {
                // case 1: disjoint — the query routes around this shard
                Overlap::Disjoint => {}
                // case 2: fully inside — the (shard root's) released count
                Overlap::Contained => acc += counts[i],
                Overlap::Partial => {
                    if self.shard_ref[i] != NO_SHARD {
                        // shard-backed leaf: descend the shard arena
                        // exactly where the unsharded DFS would descend
                        // the cut subtree, carrying the accumulator —
                        // through the shard's cell grid when one is
                        // attached
                        let s = self.shard_ref[i] as usize;
                        let handle = &self.shards[s];
                        acc = match handle.grid() {
                            Some(grid) => {
                                grid.answer_span(handle.arena(), qlo, qhi, shard_stack, acc)
                            }
                            None => handle.arena().accumulate(q, shard_stack, acc),
                        };
                    } else if kids[i] > 0 {
                        // case 3: internal — children in arena order
                        // (pushed reversed so they pop in order)
                        for c in (first[i]..first[i] + kids[i]).rev() {
                            top_stack.push(c);
                        }
                    } else if let Some(c) = self.top.leaf_contribution(i, qlo, qhi) {
                        // case 4: plain leaf — uniform assumption
                        acc += c;
                    }
                }
            }
        }
        acc
    }

    /// Answer a workload on the calling thread with one reused pair of
    /// traversal stacks (the single-worker reference for the pooled path).
    pub fn answer_batch_sequential(&self, queries: &[RangeQuery]) -> Vec<f64> {
        let mut top_stack = Vec::with_capacity(64);
        let mut shard_stack = Vec::with_capacity(64);
        queries
            .iter()
            .map(|q| self.accumulate(&q.rect, &mut top_stack, &mut shard_stack))
            .collect()
    }

    /// Answer a workload chunked across `pool` with per-chunk traversal
    /// stacks; bit-identical to
    /// [`ShardedSynopsis::answer_batch_sequential`] for every worker
    /// count.
    pub fn answer_batch_with_pool(&self, queries: &[RangeQuery], pool: &WorkerPool) -> Vec<f64> {
        crate::frozen::dispatch_batch(queries, pool, |chunk| self.answer_batch_sequential(chunk))
    }
}

impl RangeCountSynopsis for ShardedSynopsis {
    fn answer(&self, q: &RangeQuery) -> f64 {
        with_query_scratch(|top_stack, shard_stack| {
            self.accumulate(&q.rect, top_stack, shard_stack)
        })
    }

    fn answer_batch(&self, queries: &[RangeQuery]) -> Vec<f64> {
        #[cfg(feature = "parallel")]
        {
            let pool = privtree_runtime::global();
            if pool.workers() > 1 && queries.len() >= BATCH_PARALLEL_THRESHOLD {
                return self.answer_batch_with_pool(queries, pool);
            }
        }
        self.answer_batch_sequential(queries)
    }

    fn label(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PointSet;
    use crate::quadtree::SplitConfig;
    use crate::synopsis::privtree_synopsis;
    use privtree_dp::budget::Epsilon;
    use privtree_dp::rng::seeded;
    use rand::RngExt;

    fn clustered(n: usize, seed: u64) -> PointSet {
        let mut rng = seeded(seed);
        let mut ps = PointSet::new(2);
        for i in 0..n {
            if i % 5 == 0 {
                ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
            } else {
                ps.push(&[
                    0.2 + rng.random::<f64>() * 0.1,
                    0.55 + rng.random::<f64>() * 0.1,
                ]);
            }
        }
        ps
    }

    fn sample_frozen(seed: u64) -> FrozenSynopsis {
        privtree_synopsis(
            &clustered(5000, seed),
            Rect::unit(2),
            SplitConfig::full(2),
            Epsilon::new(1.0).unwrap(),
            &mut seeded(seed),
        )
        .unwrap()
        .freeze()
    }

    fn random_queries(n: usize, seed: u64) -> Vec<RangeQuery> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| {
                let cx = rng.random::<f64>() * 0.9;
                let cy = rng.random::<f64>() * 0.9;
                let w = 0.005 + rng.random::<f64>() * 0.4;
                RangeQuery::new(Rect::new(
                    &[cx, cy],
                    &[(cx + w).min(1.0), (cy + w).min(1.0)],
                ))
            })
            .collect()
    }

    #[test]
    fn from_frozen_is_bit_identical_at_every_cut_depth() {
        let frozen = sample_frozen(11);
        let queries = random_queries(300, 12);
        for cut_depth in 0..5 {
            let sharded = ShardedSynopsis::from_frozen(&frozen, cut_depth).unwrap();
            assert_eq!(
                sharded.node_count() - sharded.shard_count(),
                frozen.node_count(),
                "shard roots are duplicated into the top, nothing else"
            );
            for q in &queries {
                let a = frozen.answer(q);
                let b = sharded.answer(q);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "cut {cut_depth}: {a} vs {b} on {}",
                    q.rect
                );
            }
        }
    }

    #[test]
    fn whole_domain_query_matches_root_count() {
        let frozen = sample_frozen(3);
        let sharded = ShardedSynopsis::from_frozen(&frozen, 2).unwrap();
        let whole = RangeQuery::new(Rect::unit(2));
        assert_eq!(
            sharded.answer(&whole).to_bits(),
            frozen.answer(&whole).to_bits()
        );
    }

    #[test]
    fn from_releases_routes_by_region() {
        // two releases over the left and right halves of the unit square
        let left = FrozenSynopsis::from_tree(
            &privtree_core::tree::Tree::with_root(Rect::new(&[0.0, 0.0], &[0.5, 1.0])),
            &[10.0],
            "left",
        );
        let right = FrozenSynopsis::from_tree(
            &privtree_core::tree::Tree::with_root(Rect::new(&[0.5, 0.0], &[1.0, 1.0])),
            &[30.0],
            "right",
        );
        let sharded = ShardedSynopsis::from_releases(vec![left, right]).unwrap();
        assert_eq!(sharded.shard_count(), 2);
        assert_eq!(sharded.routing_node_count(), 3);
        // a query inside the left region only sees the left shard
        let q = RangeQuery::new(Rect::new(&[0.0, 0.0], &[0.25, 1.0]));
        assert!((sharded.answer(&q) - 5.0).abs() < 1e-12);
        // the whole domain answers with the aggregate root count
        let whole = RangeQuery::new(Rect::unit(2));
        assert_eq!(sharded.answer(&whole), 40.0);
    }

    #[test]
    fn from_releases_rejects_overlapping_regions() {
        let a = FrozenSynopsis::from_tree(
            &privtree_core::tree::Tree::with_root(Rect::new(&[0.0, 0.0], &[0.6, 1.0])),
            &[1.0],
            "a",
        );
        let b = FrozenSynopsis::from_tree(
            &privtree_core::tree::Tree::with_root(Rect::new(&[0.5, 0.0], &[1.0, 1.0])),
            &[1.0],
            "b",
        );
        assert!(matches!(
            ShardedSynopsis::from_releases(vec![a, b]),
            Err(ShardError::OverlappingRegions { .. })
        ));
    }

    #[test]
    fn empty_and_mixed_dim_shard_sets_are_refused() {
        assert_eq!(
            ShardedSynopsis::from_releases(Vec::new()).unwrap_err(),
            ShardError::Empty
        );
        let flat = FrozenSynopsis::from_tree(
            &privtree_core::tree::Tree::with_root(Rect::new(&[0.0, 0.0], &[0.5, 1.0])),
            &[1.0],
            "2d",
        );
        let cube = FrozenSynopsis::from_tree(
            &privtree_core::tree::Tree::with_root(Rect::new(&[0.6, 0.0, 0.0], &[1.0, 1.0, 1.0])),
            &[1.0],
            "3d",
        );
        assert!(matches!(
            ShardedSynopsis::from_releases(vec![flat, cube]),
            Err(ShardError::MixedDims {
                expected: 2,
                found: 3
            })
        ));
    }

    #[test]
    fn from_handles_reuses_arenas_and_grids_by_pointer() {
        let left = FrozenSynopsis::from_tree(
            &privtree_core::tree::Tree::with_root(Rect::new(&[0.0, 0.0], &[0.5, 1.0])),
            &[10.0],
            "left",
        );
        let right = FrozenSynopsis::from_tree(
            &privtree_core::tree::Tree::with_root(Rect::new(&[0.5, 0.0], &[1.0, 1.0])),
            &[30.0],
            "right",
        );
        let a = ShardedSynopsis::from_releases(vec![left, right])
            .unwrap()
            .with_shard_grids()
            .unwrap();
        let b = ShardedSynopsis::from_handles(a.shards().to_vec()).unwrap();
        assert_eq!(b.routing_node_count(), 3);
        for (ha, hb) in a.shards().iter().zip(b.shards()) {
            assert!(Arc::ptr_eq(ha.arena_arc(), hb.arena_arc()));
            assert!(Arc::ptr_eq(ha.grid().unwrap(), hb.grid().unwrap()));
        }
        let q = RangeQuery::new(Rect::new(&[0.0, 0.0], &[0.25, 1.0]));
        assert_eq!(a.answer(&q).to_bits(), b.answer(&q).to_bits());
    }

    #[test]
    fn shard_grids_match_plain_sharding() {
        let frozen = sample_frozen(31);
        let queries = random_queries(400, 32);
        let plain = ShardedSynopsis::from_frozen(&frozen, 2).unwrap();
        let gridded = ShardedSynopsis::from_frozen(&frozen, 2)
            .unwrap()
            .with_shard_grids()
            .unwrap();
        assert_eq!(
            gridded.shard_grids().map(|g| g.len()),
            Some(plain.shard_count())
        );
        assert!(plain.shard_grids().is_none());
        for q in &queries {
            let a = plain.answer(q);
            let b = gridded.answer(q);
            let tol = 1e-9 * a.abs().max(1.0);
            assert!((a - b).abs() <= tol, "{a} vs {b} on {}", q.rect);
        }
        // batch paths stay bit-identical to the gridded single-query path
        let batch = gridded.answer_batch_sequential(&queries);
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(gridded.answer(q).to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_paths_agree_with_single_answers() {
        let frozen = sample_frozen(21);
        let sharded = ShardedSynopsis::from_frozen(&frozen, 2).unwrap();
        let queries = random_queries(700, 22);
        let sequential = sharded.answer_batch_sequential(&queries);
        for (q, s) in queries.iter().zip(&sequential) {
            assert_eq!(sharded.answer(q).to_bits(), s.to_bits());
        }
        for workers in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let pooled = sharded.answer_batch_with_pool(&queries, &pool);
            assert_eq!(pooled.len(), sequential.len());
            for (a, b) in sequential.iter().zip(&pooled) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers = {workers}");
            }
        }
        // the trait entry point (possibly global-pooled) agrees too
        let auto = sharded.answer_batch(&queries);
        assert_eq!(auto.len(), sequential.len());
        for (a, b) in sequential.iter().zip(&auto) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
