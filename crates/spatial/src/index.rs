//! Exact range counting at workload scale.
//!
//! The experiments in Section 6.1 evaluate 10,000 range-count queries per
//! query set against ground truth on up to 1.6M points; a linear scan per
//! query is too slow. [`GridIndex`] buckets points into a uniform grid:
//! buckets fully inside a query contribute their pre-computed counts, and
//! only boundary buckets' points are scanned.

use crate::dataset::PointSet;
use crate::geom::Rect;

/// A uniform bucket-grid index over a [`PointSet`].
#[derive(Debug, Clone)]
pub struct GridIndex {
    domain: Rect,
    bins: Vec<usize>,
    counts: Vec<u32>,
    /// point ids grouped by bucket (CSR layout)
    bucket_start: Vec<u32>,
    point_ids: Vec<u32>,
    dims: usize,
}

impl GridIndex {
    /// Build with an automatically chosen resolution (~`n^(1/d)/4` bins per
    /// dimension, clamped to `\[4, 256\]`).
    pub fn build(data: &PointSet, domain: &Rect) -> Self {
        let d = data.dims();
        let per_dim = ((data.len().max(1) as f64).powf(1.0 / d as f64) / 4.0).ceil() as usize;
        Self::build_with_bins(data, domain, per_dim.clamp(4, 256))
    }

    /// Build with `bins_per_dim` buckets along every dimension.
    pub fn build_with_bins(data: &PointSet, domain: &Rect, bins_per_dim: usize) -> Self {
        assert!(bins_per_dim >= 1);
        let d = data.dims();
        assert_eq!(domain.dims(), d);
        let bins = vec![bins_per_dim; d];
        let total_buckets: usize = bins.iter().product();

        let mut counts = vec![0u32; total_buckets];
        let mut bucket_of = Vec::with_capacity(data.len());
        for p in data.iter() {
            let b = Self::bucket_of_point(domain, &bins, p);
            bucket_of.push(b as u32);
            counts[b] += 1;
        }
        // CSR: bucket_start[b]..bucket_start[b+1] indexes point_ids
        let mut bucket_start = vec![0u32; total_buckets + 1];
        for b in 0..total_buckets {
            bucket_start[b + 1] = bucket_start[b] + counts[b];
        }
        let mut cursor = bucket_start.clone();
        let mut point_ids = vec![0u32; data.len()];
        for (i, &b) in bucket_of.iter().enumerate() {
            point_ids[cursor[b as usize] as usize] = i as u32;
            cursor[b as usize] += 1;
        }
        Self {
            domain: *domain,
            bins,
            counts,
            bucket_start,
            point_ids,
            dims: d,
        }
    }

    fn bucket_of_point(domain: &Rect, bins: &[usize], p: &[f64]) -> usize {
        let mut idx = 0usize;
        for k in 0..bins.len() {
            let side = domain.side(k);
            let rel = if side > 0.0 {
                ((p[k] - domain.lo()[k]) / side * bins[k] as f64) as isize
            } else {
                0
            };
            let cell = rel.clamp(0, bins[k] as isize - 1) as usize;
            idx = idx * bins[k] + cell;
        }
        idx
    }

    /// Cell box of a multi-index.
    fn cell_rect(&self, cell: &[usize]) -> Rect {
        let d = self.dims;
        let mut lo = vec![0.0; d];
        let mut hi = vec![0.0; d];
        for k in 0..d {
            let w = self.domain.side(k) / self.bins[k] as f64;
            lo[k] = self.domain.lo()[k] + w * cell[k] as f64;
            hi[k] = self.domain.lo()[k] + w * (cell[k] + 1) as f64;
        }
        Rect::new(&lo, &hi)
    }

    /// Exact number of points of the indexed dataset inside `q`.
    ///
    /// `data` must be the same [`PointSet`] the index was built from (only
    /// boundary points are re-checked against it).
    pub fn count(&self, data: &PointSet, q: &Rect) -> u64 {
        let d = self.dims;
        // per-dimension range of cells overlapping q
        let mut cell_lo = vec![0usize; d];
        let mut cell_hi = vec![0usize; d]; // inclusive
        for k in 0..d {
            let side = self.domain.side(k);
            if side <= 0.0 {
                continue;
            }
            let w = side / self.bins[k] as f64;
            let a = ((q.lo()[k] - self.domain.lo()[k]) / w).floor() as isize;
            let b = ((q.hi()[k] - self.domain.lo()[k]) / w).ceil() as isize - 1;
            if b < 0 || a >= self.bins[k] as isize {
                return 0; // query outside the domain along dimension k
            }
            cell_lo[k] = a.clamp(0, self.bins[k] as isize - 1) as usize;
            cell_hi[k] = b.clamp(0, self.bins[k] as isize - 1) as usize;
        }
        // walk the (hyper-)block of overlapping cells
        let mut cell = cell_lo.clone();
        let mut total = 0u64;
        loop {
            let rect = self.cell_rect(&cell);
            let flat = cell
                .iter()
                .zip(&self.bins)
                .fold(0usize, |acc, (c, b)| acc * b + c);
            if q.contains_rect(&rect) {
                total += self.counts[flat] as u64;
            } else if rect.intersects(q) {
                let s = self.bucket_start[flat] as usize;
                let e = self.bucket_start[flat + 1] as usize;
                for &pid in &self.point_ids[s..e] {
                    if q.contains_point(data.point(pid as usize)) {
                        total += 1;
                    }
                }
            }
            // odometer increment
            let mut k = d;
            loop {
                if k == 0 {
                    return total;
                }
                k -= 1;
                if cell[k] < cell_hi[k] {
                    cell[k] += 1;
                    // reset trailing dims to their lows
                    for (kk, c) in cell.iter_mut().enumerate().skip(k + 1) {
                        *c = cell_lo[kk];
                    }
                    break;
                }
            }
        }
    }

    /// Total number of indexed points.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| *c as u64).sum()
    }

    /// Per-bucket counts (used by the dataset visualizations of Figure 4).
    pub fn bucket_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Bins per dimension.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngExt};

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = privtree_dp::rng::seeded(seed);
        let mut ps = PointSet::new(d);
        for _ in 0..n {
            let p: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
            ps.push(&p);
        }
        ps
    }

    fn random_rect<R: Rng>(d: usize, rng: &mut R) -> Rect {
        let mut lo = Vec::with_capacity(d);
        let mut hi = Vec::with_capacity(d);
        for _ in 0..d {
            let a = rng.random::<f64>();
            let b = rng.random::<f64>();
            lo.push(a.min(b));
            hi.push(a.max(b));
        }
        Rect::new(&lo, &hi)
    }

    #[test]
    fn matches_brute_force_2d() {
        let ps = random_points(5000, 2, 1);
        let dom = Rect::unit(2);
        let idx = GridIndex::build(&ps, &dom);
        let mut rng = privtree_dp::rng::seeded(2);
        for _ in 0..200 {
            let q = random_rect(2, &mut rng);
            assert_eq!(idx.count(&ps, &q), ps.count_in(&q) as u64, "query {q}");
        }
    }

    #[test]
    fn matches_brute_force_4d() {
        let ps = random_points(3000, 4, 3);
        let dom = Rect::unit(4);
        let idx = GridIndex::build(&ps, &dom);
        let mut rng = privtree_dp::rng::seeded(4);
        for _ in 0..100 {
            let q = random_rect(4, &mut rng);
            assert_eq!(idx.count(&ps, &q), ps.count_in(&q) as u64, "query {q}");
        }
    }

    #[test]
    fn total_matches_dataset() {
        let ps = random_points(1234, 2, 9);
        let idx = GridIndex::build(&ps, &Rect::unit(2));
        assert_eq!(idx.total(), 1234);
    }

    #[test]
    fn query_outside_domain_is_zero() {
        let ps = random_points(100, 2, 5);
        let idx = GridIndex::build(&ps, &Rect::unit(2));
        let q = Rect::new(&[2.0, 2.0], &[3.0, 3.0]);
        assert_eq!(idx.count(&ps, &q), 0);
    }

    #[test]
    fn whole_domain_query() {
        let ps = random_points(777, 2, 6);
        let idx = GridIndex::build(&ps, &Rect::unit(2));
        assert_eq!(idx.count(&ps, &Rect::unit(2)), 777);
    }

    #[test]
    fn clustered_duplicates() {
        // many duplicate points in one bucket
        let mut ps = PointSet::new(2);
        for _ in 0..1000 {
            ps.push(&[0.25, 0.25]);
        }
        ps.push(&[0.75, 0.75]);
        let idx = GridIndex::build_with_bins(&ps, &Rect::unit(2), 8);
        let q = Rect::new(&[0.2, 0.2], &[0.3, 0.3]);
        assert_eq!(idx.count(&ps, &q), 1000);
        let q2 = Rect::new(&[0.26, 0.0], &[1.0, 1.0]);
        assert_eq!(idx.count(&ps, &q2), 1);
    }

    #[test]
    fn one_bin_degenerates_to_scan() {
        let ps = random_points(500, 3, 7);
        let idx = GridIndex::build_with_bins(&ps, &Rect::unit(3), 1);
        let mut rng = privtree_dp::rng::seeded(8);
        for _ in 0..50 {
            let q = random_rect(3, &mut rng);
            assert_eq!(idx.count(&ps, &q), ps.count_in(&q) as u64);
        }
    }
}
