//! Range-count queries and the synopsis-answering interface.

use crate::geom::Rect;

/// A range-count query: "how many points fall in `rect`?"
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeQuery {
    /// The query rectangle `q`.
    pub rect: Rect,
}

impl RangeQuery {
    /// Wrap a rectangle as a query.
    pub fn new(rect: Rect) -> Self {
        Self { rect }
    }

    /// The fraction of the domain's volume the query covers — the paper
    /// buckets workloads into small [0.01%, 0.1%), medium [0.1%, 1%), and
    /// large [1%, 10%) by this measure.
    pub fn coverage(&self, domain: &Rect) -> f64 {
        let dv = domain.volume();
        if dv <= 0.0 {
            return 0.0;
        }
        self.rect.volume() / dv
    }

    /// Center of the query box along dimension `k` — the locality key
    /// used when a serving engine reorders a batch by Morton code (see
    /// [`crate::grid_route::GridRoutedSynopsis::answer_batch_morton`]).
    #[inline]
    pub fn center(&self, k: usize) -> f64 {
        self.rect.midpoint(k)
    }
}

/// Anything that can answer range-count queries: private synopses
/// (PrivTree, SimpleTree, UG, AG, Hierarchy, Privelet, DAWA) and the exact
/// ground truth alike. Answers are real-valued because noisy counts are.
pub trait RangeCountSynopsis {
    /// Estimated number of dataset points inside `q`.
    fn answer(&self, q: &RangeQuery) -> f64;

    /// Estimated counts for a whole workload, one answer per query in
    /// order. The default loops [`RangeCountSynopsis::answer`];
    /// read-optimized implementations (see
    /// [`crate::frozen::FrozenSynopsis`]) override this to amortize
    /// traversal scratch across the batch.
    fn answer_batch(&self, queries: &[RangeQuery]) -> Vec<f64> {
        queries.iter().map(|q| self.answer(q)).collect()
    }

    /// A short method label for experiment tables.
    fn label(&self) -> &'static str {
        "synopsis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_fraction() {
        let dom = Rect::new(&[0.0, 0.0], &[10.0, 10.0]);
        let q = RangeQuery::new(Rect::new(&[0.0, 0.0], &[1.0, 1.0]));
        assert!((q.coverage(&dom) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn center_is_the_midpoint() {
        let q = RangeQuery::new(Rect::new(&[0.0, 0.4], &[1.0, 0.6]));
        assert_eq!(q.center(0), 0.5);
        assert_eq!(q.center(1), 0.5);
    }

    #[test]
    fn trait_object_usable() {
        struct Zero;
        impl RangeCountSynopsis for Zero {
            fn answer(&self, _q: &RangeQuery) -> f64 {
                0.0
            }
        }
        let syn: Box<dyn RangeCountSynopsis> = Box::new(Zero);
        let q = RangeQuery::new(Rect::unit(2));
        assert_eq!(syn.answer(&q), 0.0);
        assert_eq!(syn.label(), "synopsis");
        // answer_batch is object-safe and defaults to looping answer
        assert_eq!(syn.answer_batch(&[q, q, q]), vec![0.0, 0.0, 0.0]);
    }
}
