//! The quadtree-style [`TreeDomain`] for spatial data (Section 3).
//!
//! A node covers a box and owns a contiguous segment of a shared point
//! permutation; splitting bisects the box along `arity_log2` dimensions
//! (all of them for a true quadtree, fewer for the round-robin fanout
//! ablation of Appendix C / Figure 8) and partitions the segment in place.
//! Scores (point counts) are segment lengths — O(1) — and total memory
//! stays O(n) no matter how deep the tree grows.
//!
//! The permutation is a plain `Vec<u32>` owned by the domain (no
//! `RefCell`): [`TreeDomain::split`] takes `&mut self`, so [`QuadDomain`]
//! is `Send` and a whole frontier level can be split as one batch. The
//! segments of a frontier are pairwise disjoint and (in builder order)
//! ascending, so [`QuadDomain::split_frontier`] carves the permutation
//! into independent sub-slices and fans them out across the persistent
//! [`privtree_runtime::WorkerPool`] (deterministic: results are collected
//! in input order and no randomness is involved, so pooled builds are
//! bit-identical to sequential ones for every worker count). With the
//! default `parallel` feature the shared [`privtree_runtime::global`]
//! pool engages automatically on large levels; an explicit pool set via
//! [`QuadDomain::with_pool`] is always used.

use privtree_core::domain::TreeDomain;
use privtree_runtime::WorkerPool;

use crate::dataset::PointSet;
use crate::geom::Rect;

/// Splitting configuration for [`QuadDomain`].
#[derive(Debug, Clone, Copy)]
pub struct SplitConfig {
    /// Bisect `2^arity_log2` children per split. `arity_log2 = d` is the
    /// standard quadtree generalization (β = 2^d); smaller values split
    /// dimensions round-robin (Figure 8's β = 2^{d/2} and β = 2 variants).
    pub arity_log2: usize,
    /// Nodes at this depth are never split: a safety floor against
    /// unbounded recursion on coincident points. 2^-60 of the domain side
    /// is far below any meaningful resolution.
    pub depth_floor: u32,
}

impl SplitConfig {
    /// Standard full bisection: β = 2^d.
    pub fn full(dims: usize) -> Self {
        Self {
            arity_log2: dims,
            depth_floor: 60,
        }
    }

    /// Round-robin partial bisection with fanout `2^arity_log2`.
    pub fn partial(arity_log2: usize) -> Self {
        Self {
            arity_log2,
            depth_floor: 120,
        }
    }

    fn split_dims(&self, cursor: u8, dims: usize) -> Vec<usize> {
        (0..self.arity_log2)
            .map(|i| (cursor as usize + i) % dims)
            .collect()
    }
}

/// A node of the quadtree domain: a box plus a segment `[start, end)` of
/// the shared permutation, the node's depth, and the next dimension to
/// split (for round-robin fanouts).
#[derive(Debug, Clone)]
pub struct QuadNode {
    /// The region `dom(v)`.
    pub rect: Rect,
    start: u32,
    end: u32,
    depth: u32,
    axis_cursor: u8,
}

impl QuadNode {
    /// Number of data points in this node's region.
    #[inline]
    pub fn count(&self) -> usize {
        (self.end - self.start) as usize
    }
}

/// Partition one node's permutation segment by child region and emit the
/// children. Free function so batch splitting can run on disjoint
/// sub-slices without borrowing the whole domain.
fn split_segment(
    data: &PointSet,
    config: &SplitConfig,
    node: &QuadNode,
    seg: &mut [u32],
) -> Option<Vec<QuadNode>> {
    if node.depth >= config.depth_floor {
        return None;
    }
    debug_assert_eq!(seg.len(), node.count());
    let dims = config.split_dims(node.axis_cursor, data.dims());
    let child_rects = node.rect.bisect(&dims);
    let k = child_rects.len();

    // classify the node's points into children and rewrite the segment
    // grouped by child (counting sort, stable within groups)
    let mut sizes = vec![0u32; k];
    let mut labels = Vec::with_capacity(seg.len());
    for &pid in seg.iter() {
        let j = node.rect.child_index_of(&dims, data.point(pid as usize));
        labels.push(j as u8);
        sizes[j] += 1;
    }
    let mut offsets = vec![0u32; k + 1];
    for j in 0..k {
        offsets[j + 1] = offsets[j] + sizes[j];
    }
    let mut scratch = vec![0u32; seg.len()];
    let mut cursor = offsets.clone();
    for (i, &pid) in seg.iter().enumerate() {
        let j = labels[i] as usize;
        scratch[cursor[j] as usize] = pid;
        cursor[j] += 1;
    }
    seg.copy_from_slice(&scratch);

    let next_cursor = ((node.axis_cursor as usize + config.arity_log2) % data.dims()) as u8;
    Some(
        child_rects
            .into_iter()
            .enumerate()
            .map(|(j, rect)| QuadNode {
                rect,
                start: node.start + offsets[j],
                end: node.start + offsets[j + 1],
                depth: node.depth + 1,
                axis_cursor: next_cursor,
            })
            .collect(),
    )
}

/// The spatial [`TreeDomain`]. Holds the dataset by reference and owns
/// the point permutation that splits reorder in place.
pub struct QuadDomain<'a> {
    data: &'a PointSet,
    perm: Vec<u32>,
    root_rect: Rect,
    config: SplitConfig,
    pool: Option<&'a WorkerPool>,
}

impl<'a> QuadDomain<'a> {
    /// Domain over `data` with root region `root_rect`.
    pub fn new(data: &'a PointSet, root_rect: Rect, config: SplitConfig) -> Self {
        assert!(config.arity_log2 >= 1 && config.arity_log2 <= data.dims());
        assert_eq!(root_rect.dims(), data.dims());
        Self {
            data,
            perm: (0..data.len() as u32).collect(),
            root_rect,
            config,
            pool: None,
        }
    }

    /// Split frontier levels on `pool` instead of the shared global pool.
    /// An explicit pool is always used (even without the `parallel`
    /// feature and below the auto-parallelism size threshold), which is
    /// how the tests pin builds to specific worker counts.
    pub fn with_pool(mut self, pool: &'a WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Domain with the standard β = 2^d quadtree split.
    pub fn quadtree(data: &'a PointSet, root_rect: Rect) -> Self {
        Self::new(data, root_rect, SplitConfig::full(data.dims()))
    }

    /// The root region.
    pub fn root_rect(&self) -> Rect {
        self.root_rect
    }

    /// The dataset.
    pub fn data(&self) -> &PointSet {
        self.data
    }
}

impl TreeDomain for QuadDomain<'_> {
    type Node = QuadNode;

    fn root(&self) -> QuadNode {
        QuadNode {
            rect: self.root_rect,
            start: 0,
            end: self.data.len() as u32,
            depth: 0,
            axis_cursor: 0,
        }
    }

    fn fanout(&self) -> usize {
        1 << self.config.arity_log2
    }

    fn split(&mut self, node: &QuadNode) -> Option<Vec<QuadNode>> {
        let seg = &mut self.perm[node.start as usize..node.end as usize];
        split_segment(self.data, &self.config, node, seg)
    }

    /// Batch split: carve the permutation into the frontier's disjoint
    /// segments and process them independently. Builders present frontier
    /// nodes in arena order, which for this domain is ascending segment
    /// order; if a caller passes overlapping or unordered nodes we fall
    /// back to the sequential per-node path.
    fn split_frontier(&mut self, nodes: &[&QuadNode]) -> Vec<Option<Vec<QuadNode>>> {
        let disjoint_ascending = nodes.windows(2).all(|w| w[0].end <= w[1].start);
        if !disjoint_ascending {
            return nodes.iter().map(|n| self.split(n)).collect();
        }

        // carve pairwise-disjoint mutable sub-slices, one per node
        let mut jobs: Vec<(&QuadNode, &mut [u32])> = Vec::with_capacity(nodes.len());
        let mut rest = self.perm.as_mut_slice();
        let mut base = 0u32;
        for &node in nodes {
            let tmp = std::mem::take(&mut rest);
            let (_, tail) = tmp.split_at_mut((node.start - base) as usize);
            let (seg, tail) = tail.split_at_mut(node.count());
            jobs.push((node, seg));
            rest = tail;
            base = node.end;
        }

        run_split_jobs(self.data, &self.config, jobs, self.pool)
    }

    fn score(&self, node: &QuadNode) -> f64 {
        node.count() as f64
    }
}

/// Execute the per-segment split jobs, fanning them out across the worker
/// pool when one is available and the level carries enough work. Chunks
/// are balanced by *point* count, not node count — PrivTree levels are
/// heavily skewed (one dense segment can hold most of the data), so
/// equal-node chunks would serialize on one worker. Results are collected
/// in input order, so the output is identical to the sequential path for
/// every worker count.
fn run_split_jobs(
    data: &PointSet,
    config: &SplitConfig,
    jobs: Vec<(&QuadNode, &mut [u32])>,
    pool: Option<&WorkerPool>,
) -> Vec<Option<Vec<QuadNode>>> {
    /// The shared global pool engages only when a level moves at least
    /// this many points; an explicitly configured pool is always used.
    const PARALLEL_POINT_THRESHOLD: usize = 1 << 15;

    let total_points: usize = jobs.iter().map(|(_, seg)| seg.len()).sum();
    let explicit = pool.is_some();
    #[cfg(feature = "parallel")]
    let pool = pool.or_else(|| Some(privtree_runtime::global()));
    let engage = pool.is_some_and(|p| {
        p.workers() > 1 && jobs.len() > 1 && (explicit || total_points >= PARALLEL_POINT_THRESHOLD)
    });
    match pool {
        Some(pool) if engage => pool.map_vec_weighted(
            jobs,
            |(_, seg)| seg.len().max(1),
            |(node, seg)| split_segment(data, config, node, seg),
        ),
        _ => jobs
            .into_iter()
            .map(|(node, seg)| split_segment(data, config, node, seg))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_core::domain::TreeDomain;
    use privtree_core::nonprivate::nonprivate_tree;
    use rand::RngExt;

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = privtree_dp::rng::seeded(seed);
        let mut ps = PointSet::new(d);
        for _ in 0..n {
            let p: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
            ps.push(&p);
        }
        ps
    }

    /// The refactor's point: the domain no longer hides scratch state
    /// behind a `RefCell`, so it is `Send` (and `Sync`).
    #[test]
    fn quad_domain_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuadDomain<'static>>();
        assert_send_sync::<QuadNode>();
    }

    #[test]
    fn split_partitions_points_exactly() {
        let ps = random_points(1000, 2, 1);
        let mut dom = QuadDomain::quadtree(&ps, Rect::unit(2));
        let root = dom.root();
        assert_eq!(dom.score(&root), 1000.0);
        let kids = dom.split(&root).unwrap();
        assert_eq!(kids.len(), 4);
        let total: f64 = kids.iter().map(|k| dom.score(k)).sum();
        assert_eq!(total, 1000.0);
        // every child's points actually lie in its rect
        for child in &kids {
            for &pid in &dom.perm[child.start as usize..child.end as usize] {
                assert!(child.rect.contains_point(ps.point(pid as usize)));
            }
        }
    }

    #[test]
    fn deep_split_keeps_segments_consistent() {
        let ps = random_points(500, 2, 2);
        let mut dom = QuadDomain::quadtree(&ps, Rect::unit(2));
        // split three levels along the first child each time
        let mut node = dom.root();
        for _ in 0..3 {
            let kids = dom.split(&node).unwrap();
            // after splitting, the counts still partition the parent
            let total: usize = kids.iter().map(|k| k.count()).sum();
            assert_eq!(total, node.count());
            node = kids.into_iter().max_by_key(|k| k.count()).unwrap();
        }
        // every point in the final segment is inside its rect
        for &pid in &dom.perm[node.start as usize..node.end as usize] {
            assert!(node.rect.contains_point(ps.point(pid as usize)));
        }
    }

    /// Batch splitting a frontier gives the same children (and the same
    /// permutation) as splitting node by node.
    #[test]
    fn split_frontier_matches_sequential_splits() {
        let ps = random_points(4000, 2, 9);
        let mut batch_dom = QuadDomain::quadtree(&ps, Rect::unit(2));
        let mut seq_dom = QuadDomain::quadtree(&ps, Rect::unit(2));

        // two levels deep: frontier = all grandchildren of the root
        let root = batch_dom.root();
        let level1 = batch_dom.split(&root).unwrap();
        seq_dom.split(&seq_dom.root()).unwrap();
        let refs: Vec<&QuadNode> = level1.iter().collect();
        let batch = batch_dom.split_frontier(&refs);
        let sequential: Vec<Option<Vec<QuadNode>>> =
            level1.iter().map(|n| seq_dom.split(n)).collect();

        assert_eq!(batch.len(), sequential.len());
        for (b, s) in batch.iter().zip(&sequential) {
            let (b, s) = (b.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(b.len(), s.len());
            for (bn, sn) in b.iter().zip(s) {
                assert_eq!(bn.rect, sn.rect);
                assert_eq!((bn.start, bn.end), (sn.start, sn.end));
            }
        }
        assert_eq!(batch_dom.perm, seq_dom.perm, "permutations diverged");
    }

    #[test]
    fn split_frontier_handles_sparse_unordered_input() {
        let ps = random_points(2000, 2, 11);
        let mut dom = QuadDomain::quadtree(&ps, Rect::unit(2));
        let kids = dom.split(&dom.root()).unwrap();
        // reversed order exercises the sequential fallback
        let refs: Vec<&QuadNode> = kids.iter().rev().collect();
        let out = dom.split_frontier(&refs);
        for (node, children) in refs.iter().zip(&out) {
            let children = children.as_ref().unwrap();
            let total: usize = children.iter().map(|c| c.count()).sum();
            assert_eq!(total, node.count());
        }
    }

    #[test]
    fn round_robin_split_cycles_axes() {
        let ps = random_points(100, 4, 3);
        let mut dom = QuadDomain::new(&ps, Rect::unit(4), SplitConfig::partial(2));
        assert_eq!(dom.fanout(), 4);
        let root = dom.root();
        let kids = dom.split(&root).unwrap();
        assert_eq!(kids.len(), 4);
        // first split bisects dims {0,1}: children keep full extent in dims 2,3
        assert_eq!(kids[0].rect.side(2), 1.0);
        assert_eq!(kids[0].rect.side(3), 1.0);
        assert_eq!(kids[0].rect.side(0), 0.5);
        // next split starts at dim 2
        let gkids = dom.split(&kids[0]).unwrap();
        assert_eq!(gkids[0].rect.side(2), 0.5);
        assert_eq!(gkids[0].rect.side(0), 0.5);
    }

    #[test]
    fn depth_floor_stops_splits() {
        let ps = PointSet::from_flat(2, [0.5, 0.5].repeat(100));
        let mut dom = QuadDomain::new(
            &ps,
            Rect::unit(2),
            SplitConfig {
                arity_log2: 2,
                depth_floor: 2,
            },
        );
        let tree = nonprivate_tree(&mut dom, 0.0, None);
        assert!(tree.max_depth() <= 2);
    }

    #[test]
    fn nonprivate_quadtree_isolates_cluster() {
        // 900 points in one corner cell, 1 elsewhere; θ = 50 ⇒ the tree
        // keeps splitting the dense corner only
        let mut ps = PointSet::new(2);
        let mut rng = privtree_dp::rng::seeded(4);
        for _ in 0..900 {
            ps.push(&[rng.random::<f64>() * 0.1, rng.random::<f64>() * 0.1]);
        }
        ps.push(&[0.9, 0.9]);
        let mut dom = QuadDomain::quadtree(&ps, Rect::unit(2));
        let tree = nonprivate_tree(&mut dom, 50.0, None);
        assert!(tree.max_depth() >= 3, "depth = {}", tree.max_depth());
        // leaves partition the root count
        let leaf_total: f64 = tree.leaf_ids().map(|id| dom.score(tree.payload(id))).sum();
        assert_eq!(leaf_total, 901.0);
    }

    #[test]
    fn four_dim_quadtree_fanout_16() {
        let ps = random_points(2000, 4, 5);
        let mut dom = QuadDomain::quadtree(&ps, Rect::unit(4));
        assert_eq!(dom.fanout(), 16);
        let kids = dom.split(&dom.root()).unwrap();
        assert_eq!(kids.len(), 16);
        let total: usize = kids.iter().map(|k| k.count()).sum();
        assert_eq!(total, 2000);
    }
}
