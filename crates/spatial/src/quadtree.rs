//! The quadtree-style [`TreeDomain`] for spatial data (Section 3).
//!
//! A node covers a box and owns a contiguous segment of a shared point
//! permutation; splitting bisects the box along `arity_log2` dimensions
//! (all of them for a true quadtree, fewer for the round-robin fanout
//! ablation of Appendix C / Figure 8) and partitions the segment in place.
//! Scores (point counts) are segment lengths — O(1) — and total memory
//! stays O(n) no matter how deep the tree grows.

use std::cell::RefCell;

use privtree_core::domain::TreeDomain;

use crate::dataset::PointSet;
use crate::geom::Rect;

/// Splitting configuration for [`QuadDomain`].
#[derive(Debug, Clone, Copy)]
pub struct SplitConfig {
    /// Bisect `2^arity_log2` children per split. `arity_log2 = d` is the
    /// standard quadtree generalization (β = 2^d); smaller values split
    /// dimensions round-robin (Figure 8's β = 2^{d/2} and β = 2 variants).
    pub arity_log2: usize,
    /// Nodes at this depth are never split: a safety floor against
    /// unbounded recursion on coincident points. 2^-60 of the domain side
    /// is far below any meaningful resolution.
    pub depth_floor: u32,
}

impl SplitConfig {
    /// Standard full bisection: β = 2^d.
    pub fn full(dims: usize) -> Self {
        Self {
            arity_log2: dims,
            depth_floor: 60,
        }
    }

    /// Round-robin partial bisection with fanout `2^arity_log2`.
    pub fn partial(arity_log2: usize) -> Self {
        Self {
            arity_log2,
            depth_floor: 120,
        }
    }
}

/// A node of the quadtree domain: a box plus a segment `[start, end)` of
/// the shared permutation, the node's depth, and the next dimension to
/// split (for round-robin fanouts).
#[derive(Debug, Clone)]
pub struct QuadNode {
    /// The region `dom(v)`.
    pub rect: Rect,
    start: u32,
    end: u32,
    depth: u32,
    axis_cursor: u8,
}

impl QuadNode {
    /// Number of data points in this node's region.
    #[inline]
    pub fn count(&self) -> usize {
        (self.end - self.start) as usize
    }
}

/// The spatial [`TreeDomain`]. Holds the dataset by reference and a
/// `RefCell`ed permutation that splits reorder in place (builds are
/// single-threaded, matching Algorithm 2's sequential queue).
pub struct QuadDomain<'a> {
    data: &'a PointSet,
    perm: RefCell<Vec<u32>>,
    root_rect: Rect,
    config: SplitConfig,
}

impl<'a> QuadDomain<'a> {
    /// Domain over `data` with root region `root_rect`.
    pub fn new(data: &'a PointSet, root_rect: Rect, config: SplitConfig) -> Self {
        assert!(config.arity_log2 >= 1 && config.arity_log2 <= data.dims());
        assert_eq!(root_rect.dims(), data.dims());
        Self {
            data,
            perm: RefCell::new((0..data.len() as u32).collect()),
            root_rect,
            config,
        }
    }

    /// Domain with the standard β = 2^d quadtree split.
    pub fn quadtree(data: &'a PointSet, root_rect: Rect) -> Self {
        Self::new(data, root_rect, SplitConfig::full(data.dims()))
    }

    /// The root region.
    pub fn root_rect(&self) -> Rect {
        self.root_rect
    }

    /// The dataset.
    pub fn data(&self) -> &PointSet {
        self.data
    }

    fn split_dims(&self, cursor: u8) -> Vec<usize> {
        let d = self.data.dims();
        (0..self.config.arity_log2)
            .map(|i| (cursor as usize + i) % d)
            .collect()
    }
}

impl TreeDomain for QuadDomain<'_> {
    type Node = QuadNode;

    fn root(&self) -> QuadNode {
        QuadNode {
            rect: self.root_rect,
            start: 0,
            end: self.data.len() as u32,
            depth: 0,
            axis_cursor: 0,
        }
    }

    fn fanout(&self) -> usize {
        1 << self.config.arity_log2
    }

    fn split(&self, node: &QuadNode) -> Option<Vec<QuadNode>> {
        if node.depth >= self.config.depth_floor {
            return None;
        }
        let dims = self.split_dims(node.axis_cursor);
        let child_rects = node.rect.bisect(&dims);
        let k = child_rects.len();

        // classify the node's points into children and rewrite the segment
        // grouped by child (counting sort, stable within groups)
        let mut perm = self.perm.borrow_mut();
        let seg = &mut perm[node.start as usize..node.end as usize];
        let mut sizes = vec![0u32; k];
        let mut labels = Vec::with_capacity(seg.len());
        for &pid in seg.iter() {
            let j = node.rect.child_index_of(&dims, self.data.point(pid as usize));
            labels.push(j as u8);
            sizes[j] += 1;
        }
        let mut offsets = vec![0u32; k + 1];
        for j in 0..k {
            offsets[j + 1] = offsets[j] + sizes[j];
        }
        let mut scratch = vec![0u32; seg.len()];
        let mut cursor = offsets.clone();
        for (i, &pid) in seg.iter().enumerate() {
            let j = labels[i] as usize;
            scratch[cursor[j] as usize] = pid;
            cursor[j] += 1;
        }
        seg.copy_from_slice(&scratch);

        let next_cursor =
            ((node.axis_cursor as usize + self.config.arity_log2) % self.data.dims()) as u8;
        Some(
            child_rects
                .into_iter()
                .enumerate()
                .map(|(j, rect)| QuadNode {
                    rect,
                    start: node.start + offsets[j],
                    end: node.start + offsets[j + 1],
                    depth: node.depth + 1,
                    axis_cursor: next_cursor,
                })
                .collect(),
        )
    }

    fn score(&self, node: &QuadNode) -> f64 {
        node.count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtree_core::domain::TreeDomain;
    use privtree_core::nonprivate::nonprivate_tree;
    use rand::RngExt;

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = privtree_dp::rng::seeded(seed);
        let mut ps = PointSet::new(d);
        for _ in 0..n {
            let p: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
            ps.push(&p);
        }
        ps
    }

    #[test]
    fn split_partitions_points_exactly() {
        let ps = random_points(1000, 2, 1);
        let dom = QuadDomain::quadtree(&ps, Rect::unit(2));
        let root = dom.root();
        assert_eq!(dom.score(&root), 1000.0);
        let kids = dom.split(&root).unwrap();
        assert_eq!(kids.len(), 4);
        let total: f64 = kids.iter().map(|k| dom.score(k)).sum();
        assert_eq!(total, 1000.0);
        // every child's points actually lie in its rect
        for child in &kids {
            let perm = dom.perm.borrow();
            for &pid in &perm[child.start as usize..child.end as usize] {
                assert!(child.rect.contains_point(ps.point(pid as usize)));
            }
        }
    }

    #[test]
    fn deep_split_keeps_segments_consistent() {
        let ps = random_points(500, 2, 2);
        let dom = QuadDomain::quadtree(&ps, Rect::unit(2));
        // split three levels along the first child each time
        let mut node = dom.root();
        for _ in 0..3 {
            let kids = dom.split(&node).unwrap();
            // after splitting, the counts still partition the parent
            let total: usize = kids.iter().map(|k| k.count()).sum();
            assert_eq!(total, node.count());
            node = kids.into_iter().max_by_key(|k| k.count()).unwrap();
        }
        // every point in the final segment is inside its rect
        let perm = dom.perm.borrow();
        for &pid in &perm[node.start as usize..node.end as usize] {
            assert!(node.rect.contains_point(ps.point(pid as usize)));
        }
    }

    #[test]
    fn round_robin_split_cycles_axes() {
        let ps = random_points(100, 4, 3);
        let dom = QuadDomain::new(&ps, Rect::unit(4), SplitConfig::partial(2));
        assert_eq!(dom.fanout(), 4);
        let root = dom.root();
        let kids = dom.split(&root).unwrap();
        assert_eq!(kids.len(), 4);
        // first split bisects dims {0,1}: children keep full extent in dims 2,3
        assert_eq!(kids[0].rect.side(2), 1.0);
        assert_eq!(kids[0].rect.side(3), 1.0);
        assert_eq!(kids[0].rect.side(0), 0.5);
        // next split starts at dim 2
        let gkids = dom.split(&kids[0]).unwrap();
        assert_eq!(gkids[0].rect.side(2), 0.5);
        assert_eq!(gkids[0].rect.side(0), 0.5);
    }

    #[test]
    fn depth_floor_stops_splits() {
        let ps = PointSet::from_flat(2, [0.5, 0.5].repeat(100));
        let dom = QuadDomain::new(
            &ps,
            Rect::unit(2),
            SplitConfig {
                arity_log2: 2,
                depth_floor: 2,
            },
        );
        let tree = nonprivate_tree(&dom, 0.0, None);
        assert!(tree.max_depth() <= 2);
    }

    #[test]
    fn nonprivate_quadtree_isolates_cluster() {
        // 900 points in one corner cell, 1 elsewhere; θ = 50 ⇒ the tree
        // keeps splitting the dense corner only
        let mut ps = PointSet::new(2);
        let mut rng = privtree_dp::rng::seeded(4);
        for _ in 0..900 {
            ps.push(&[rng.random::<f64>() * 0.1, rng.random::<f64>() * 0.1]);
        }
        ps.push(&[0.9, 0.9]);
        let dom = QuadDomain::quadtree(&ps, Rect::unit(2));
        let tree = nonprivate_tree(&dom, 50.0, None);
        assert!(tree.max_depth() >= 3, "depth = {}", tree.max_depth());
        // leaves partition the root count
        let leaf_total: f64 = tree.leaf_ids().map(|id| dom.score(tree.payload(id))).sum();
        assert_eq!(leaf_total, 901.0);
    }

    #[test]
    fn four_dim_quadtree_fanout_16() {
        let ps = random_points(2000, 4, 5);
        let dom = QuadDomain::quadtree(&ps, Rect::unit(4));
        assert_eq!(dom.fanout(), 16);
        let kids = dom.split(&dom.root()).unwrap();
        assert_eq!(kids.len(), 16);
        let total: usize = kids.iter().map(|k| k.count()).sum();
        assert_eq!(total, 2000);
    }
}
