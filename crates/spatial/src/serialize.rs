//! Plain-text serialization of released synopses.
//!
//! A differentially private release is only useful if it can leave the
//! process that computed it. The format is line-oriented and
//! self-describing: a **manifest** line announces which sections the file
//! carries, then each section follows with its own header:
//!
//! ```text
//! privtree-manifest v1 sections=synopsis
//! privtree-synopsis v1 dims=2 nodes=5 label=PrivTree
//! node 0 parent=- lo=0,0 hi=1,1 count=1000.5
//! node 1 parent=0 lo=0,0 hi=0.5,0.5 count=250.25
//! …
//! ```
//!
//! Children must appear after their parents (the arena order the builders
//! produce), and each parent's children must be contiguous.
//!
//! A grid-routed release ([`crate::grid_route::GridRoutedSynopsis`])
//! declares `sections=synopsis,grid` and appends a `privtree-grid v1`
//! section after the node lines — per-cell anchors and exact
//! contributions in row-major order — so the accelerator's precomputation
//! ships with the release instead of being redone at load time
//! ([`grid_routed_to_text`]/[`grid_routed_from_text`]; the summed-area
//! table is rebuilt deterministically from the values, so a round trip
//! answers bit-identically).
//!
//! Parsers accept files without a manifest (the pre-manifest v1 format);
//! when a manifest is present, the declared and actual sections must
//! agree. Every [`ParseError`] names the section it arose in and the
//! 1-based line number within the whole file, so a corrupt byte in a
//! million-line release is localizable.

use crate::frozen::FrozenSynopsis;
use crate::geom::Rect;
use crate::grid_route::{CellGrid, GridRoutedSynopsis};
use crate::query::RangeCountSynopsis;
use crate::synopsis::SpatialSynopsis;
use privtree_core::tree::{NodeId, Tree};

/// Serialization failures. Each variant carries the section name
/// (`manifest`, `synopsis`, or `grid`) and, where one exists, the 1-based
/// line number **within the whole file** where the problem was found.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A section header line is missing required fields or malformed.
    BadHeader {
        section: &'static str,
        line: usize,
        reason: String,
    },
    /// A record line inside a section could not be parsed or violates the
    /// section's invariants.
    BadRecord {
        section: &'static str,
        line: usize,
        reason: String,
    },
    /// A section's header promised a different number of records than its
    /// body carries (`line` points at the header).
    CountMismatch {
        section: &'static str,
        line: usize,
        expected: usize,
        found: usize,
    },
    /// A section the caller (or the manifest) requires is absent.
    MissingSection {
        section: &'static str,
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader {
                section,
                line,
                reason,
            } => {
                write!(f, "bad {section} header at line {line}: {reason}")
            }
            ParseError::BadRecord {
                section,
                line,
                reason,
            } => {
                write!(f, "bad {section} record at line {line}: {reason}")
            }
            ParseError::CountMismatch {
                section,
                line,
                expected,
                found,
            } => write!(
                f,
                "{section} section (header at line {line}): expected {expected} records, \
                 found {found}"
            ),
            ParseError::MissingSection { section, reason } => {
                write!(f, "missing {section} section: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Section names as they appear in the manifest and in errors.
const MANIFEST: &str = "manifest";
const SYNOPSIS: &str = "synopsis";
const GRID: &str = "grid";

/// A line tagged with its 1-based number in the whole file.
type NumberedLine<'a> = (usize, &'a str);

/// A section's header line plus its record lines.
type SectionLines<'a> = (NumberedLine<'a>, Vec<NumberedLine<'a>>);

/// The file cut into sections, each line tagged with its 1-based number.
struct Sections<'a> {
    /// Synopsis header (line number, text).
    synopsis_header: NumberedLine<'a>,
    /// Node records of the synopsis section.
    synopsis: Vec<NumberedLine<'a>>,
    /// Grid section, when present: header + records.
    grid: Option<SectionLines<'a>>,
}

/// Split a release file into its sections, validating the manifest (when
/// present) against the sections actually found.
fn split_sections(text: &str) -> Result<Sections<'_>, ParseError> {
    let mut declared: Option<(usize, Vec<&str>)> = None;
    let mut synopsis_header: Option<NumberedLine<'_>> = None;
    let mut synopsis: Vec<NumberedLine<'_>> = Vec::new();
    let mut grid: Option<SectionLines<'_>> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("privtree-manifest v1") {
            if declared.is_some() || synopsis_header.is_some() {
                return Err(ParseError::BadRecord {
                    section: MANIFEST,
                    line: line_no,
                    reason: "manifest must be the first line and appear once".into(),
                });
            }
            let sections = line
                .split_whitespace()
                .find_map(|f| f.strip_prefix("sections="))
                .ok_or_else(|| ParseError::BadHeader {
                    section: MANIFEST,
                    line: line_no,
                    reason: format!("no sections= field in: {line}"),
                })?;
            let names: Vec<&str> = sections.split(',').collect();
            for name in &names {
                if *name != SYNOPSIS && *name != GRID {
                    return Err(ParseError::BadHeader {
                        section: MANIFEST,
                        line: line_no,
                        reason: format!("unknown section name {name}"),
                    });
                }
            }
            declared = Some((line_no, names));
        } else if line.starts_with("privtree-synopsis v1") {
            if synopsis_header.is_some() {
                return Err(ParseError::BadRecord {
                    section: SYNOPSIS,
                    line: line_no,
                    reason: "duplicate synopsis header".into(),
                });
            }
            synopsis_header = Some((line_no, line));
        } else if line.starts_with("privtree-grid v1") {
            if grid.is_some() {
                return Err(ParseError::BadRecord {
                    section: GRID,
                    line: line_no,
                    reason: "duplicate grid header".into(),
                });
            }
            grid = Some(((line_no, line), Vec::new()));
        } else if let Some((_, records)) = &mut grid {
            records.push((line_no, line));
        } else if synopsis_header.is_some() {
            synopsis.push((line_no, line));
        } else {
            return Err(ParseError::BadHeader {
                section: SYNOPSIS,
                line: line_no,
                reason: format!("expected a synopsis header, found: {line}"),
            });
        }
    }
    let synopsis_header = synopsis_header.ok_or_else(|| ParseError::MissingSection {
        section: SYNOPSIS,
        reason: "no privtree-synopsis header in input".into(),
    })?;
    if let Some((line, names)) = declared {
        if !names.contains(&SYNOPSIS) {
            return Err(ParseError::BadHeader {
                section: MANIFEST,
                line,
                reason: "manifest does not declare the synopsis section".into(),
            });
        }
        match (names.contains(&GRID), &grid) {
            (true, None) => {
                return Err(ParseError::MissingSection {
                    section: GRID,
                    reason: format!("declared by the manifest at line {line} but absent"),
                })
            }
            (false, Some(((grid_line, _), _))) => {
                return Err(ParseError::BadRecord {
                    section: MANIFEST,
                    line,
                    reason: format!("grid section at line {grid_line} is not declared"),
                })
            }
            _ => {}
        }
    }
    Ok(Sections {
        synopsis_header,
        synopsis,
        grid,
    })
}

/// The manifest line announcing `sections`.
fn manifest_line(sections: &[&str]) -> String {
    format!("privtree-manifest v1 sections={}\n", sections.join(","))
}

/// The synopsis section (header + node records) without a manifest.
fn synopsis_section(synopsis: &SpatialSynopsis) -> String {
    let tree = synopsis.tree();
    let dims = tree.payload(tree.root()).dims();
    let mut out = String::new();
    out.push_str(&format!(
        "privtree-synopsis v1 dims={} nodes={} label={}\n",
        dims,
        tree.len(),
        synopsis.label()
    ));
    for id in tree.ids() {
        let rect = tree.payload(id);
        let parent = match tree.parent(id) {
            Some(p) => p.index().to_string(),
            None => "-".to_string(),
        };
        let fmt_coords = |c: &[f64]| {
            c.iter()
                .map(|x| format!("{x:.17e}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!(
            "node {} parent={} lo={} hi={} count={:.17e}\n",
            id.index(),
            parent,
            fmt_coords(rect.lo()),
            fmt_coords(rect.hi()),
            synopsis.counts()[id.index()]
        ));
    }
    out
}

/// Serialize a synopsis to the v1 text format (manifest + synopsis
/// section).
pub fn to_text(synopsis: &SpatialSynopsis) -> String {
    let mut out = manifest_line(&[SYNOPSIS]);
    out.push_str(&synopsis_section(synopsis));
    out
}

/// Serialize a frozen synopsis: thaw to the tree view (lossless, same
/// arena order) and emit the same v1 text format, so frozen and tree-walk
/// releases interchange freely on disk.
pub fn frozen_to_text(synopsis: &FrozenSynopsis) -> String {
    to_text(&synopsis.thaw())
}

/// Parse the v1 text format directly into the read-optimized
/// representation. A trailing grid section, if any, is ignored (use
/// [`grid_routed_from_text`] to load it).
pub fn frozen_from_text(text: &str) -> Result<FrozenSynopsis, ParseError> {
    Ok(from_text(text)?.freeze())
}

/// The `privtree-grid v1` section (header + cell records) for `grid`.
fn grid_section(grid: &CellGrid) -> String {
    let bins = grid
        .bins()
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut out = format!("privtree-grid v1 bins={bins}\n");
    for (i, (&a, v)) in grid.anchors().iter().zip(grid.values()).enumerate() {
        out.push_str(&format!("cell {i} anchor={a} value={v:.17e}\n"));
    }
    out
}

/// Serialize a grid-routed release: a manifest declaring both sections,
/// the synopsis text, then a `privtree-grid v1` section carrying every
/// cell's anchor and exact contribution (17 significant digits, so values
/// round-trip bit-exactly).
pub fn grid_routed_to_text(synopsis: &GridRoutedSynopsis) -> String {
    release_to_text(synopsis.frozen(), Some(synopsis.grid()))
}

/// Serialize an arena plus an optional shipped grid — the exact inverse
/// of [`release_from_text`], so serving layers (and the binary-format
/// converters in `privtree-store`) can write whichever shape they hold
/// without wrapping it in an engine first.
pub fn release_to_text(arena: &FrozenSynopsis, grid: Option<&CellGrid>) -> String {
    match grid {
        None => frozen_to_text(arena),
        Some(grid) => {
            let mut out = manifest_line(&[SYNOPSIS, GRID]);
            out.push_str(&synopsis_section(&arena.thaw()));
            out.push_str(&grid_section(grid));
            out
        }
    }
}

/// Parse a grid-routed release: the synopsis part is parsed as usual, the
/// grid section is validated (cell count, anchors in range and covering
/// their cells) and its summed-area table rebuilt deterministically, so
/// the result answers bit-identically to the serialized engine.
pub fn grid_routed_from_text(text: &str) -> Result<GridRoutedSynopsis, ParseError> {
    let sections = split_sections(text)?;
    if sections.grid.is_none() {
        return Err(ParseError::MissingSection {
            section: GRID,
            reason: "no privtree-grid header in input".into(),
        });
    }
    let (frozen, grid) = parse_gridded(&sections)?;
    Ok(GridRoutedSynopsis::from_prebuilt(frozen, grid))
}

/// Parse a release in a single pass, whatever sections it carries: the
/// frozen arena plus the shipped [`CellGrid`] when a grid section is
/// present (`None` otherwise). This is the loader for serving layers
/// that accept both plain and grid-routed files — no second scan to
/// probe for the grid.
pub fn release_from_text(text: &str) -> Result<(FrozenSynopsis, Option<CellGrid>), ParseError> {
    let sections = split_sections(text)?;
    if sections.grid.is_none() {
        return Ok((parse_synopsis(&sections)?.freeze(), None));
    }
    let (frozen, grid) = parse_gridded(&sections)?;
    Ok((frozen, Some(grid)))
}

/// Parse the synopsis + grid sections of an already-split file (the grid
/// section must be present).
fn parse_gridded(sections: &Sections<'_>) -> Result<(FrozenSynopsis, CellGrid), ParseError> {
    let ((header_line, header), records) = sections
        .grid
        .as_ref()
        .expect("parse_gridded requires a grid section");
    let frozen = parse_synopsis(sections)?.freeze();
    let header_line = *header_line;
    let bins: Vec<usize> = header
        .split_whitespace()
        .find_map(|f| f.strip_prefix("bins="))
        .ok_or_else(|| ParseError::BadHeader {
            section: GRID,
            line: header_line,
            reason: format!("no bins= field in: {header}"),
        })?
        .split(',')
        .map(|b| {
            b.parse::<usize>().map_err(|_| ParseError::BadHeader {
                section: GRID,
                line: header_line,
                reason: format!("bad bin count {b}"),
            })
        })
        .collect::<Result<_, _>>()?;
    let cells: usize = bins.iter().product();
    let mut anchors = Vec::with_capacity(cells);
    let mut values = Vec::with_capacity(cells);
    for &(line_no, line) in records {
        let bad = |reason: String| ParseError::BadRecord {
            section: GRID,
            line: line_no,
            reason,
        };
        let mut fields = line.split_whitespace();
        if fields.next() != Some("cell") {
            return Err(bad("expected a cell record".into()));
        }
        let index: usize = fields
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad cell index".into()))?;
        if index != anchors.len() {
            return Err(bad(format!("cell {index} out of order")));
        }
        let mut anchor: Option<u32> = None;
        let mut value: Option<f64> = None;
        for field in fields {
            if let Some(v) = field.strip_prefix("anchor=") {
                anchor = Some(v.parse().map_err(|_| bad(format!("bad anchor {v}")))?);
            } else if let Some(v) = field.strip_prefix("value=") {
                value = Some(v.parse().map_err(|_| bad(format!("bad value {v}")))?);
            }
        }
        anchors.push(anchor.ok_or_else(|| bad("missing anchor".into()))?);
        values.push(value.ok_or_else(|| bad("missing value".into()))?);
    }
    if anchors.len() != cells {
        return Err(ParseError::CountMismatch {
            section: GRID,
            line: header_line,
            expected: cells,
            found: anchors.len(),
        });
    }
    let grid = CellGrid::from_parts(&frozen, &bins, anchors, values).map_err(|e| {
        ParseError::BadRecord {
            section: GRID,
            line: header_line,
            reason: e.to_string(),
        }
    })?;
    Ok((frozen, grid))
}

/// Parse the v1 text format back into a synopsis. A trailing grid
/// section, if any, is ignored.
pub fn from_text(text: &str) -> Result<SpatialSynopsis, ParseError> {
    parse_synopsis(&split_sections(text)?)
}

/// Parse the synopsis section of an already-split file.
fn parse_synopsis(sections: &Sections<'_>) -> Result<SpatialSynopsis, ParseError> {
    let (header_line, header) = sections.synopsis_header;
    let mut dims = 0usize;
    let mut nodes = 0usize;
    for field in header.split_whitespace().skip(2) {
        if let Some(v) = field.strip_prefix("dims=") {
            dims = v.parse().map_err(|_| ParseError::BadHeader {
                section: SYNOPSIS,
                line: header_line,
                reason: format!("bad dims field in: {header}"),
            })?;
        } else if let Some(v) = field.strip_prefix("nodes=") {
            nodes = v.parse().map_err(|_| ParseError::BadHeader {
                section: SYNOPSIS,
                line: header_line,
                reason: format!("bad nodes field in: {header}"),
            })?;
        }
    }
    if dims == 0 || nodes == 0 {
        return Err(ParseError::BadHeader {
            section: SYNOPSIS,
            line: header_line,
            reason: format!("dims and nodes must both be positive in: {header}"),
        });
    }

    // collect raw node records first
    struct Raw {
        line: usize,
        parent: Option<usize>,
        rect: Rect,
        count: f64,
    }
    let mut raw: Vec<Raw> = Vec::with_capacity(nodes);
    for &(line_no, line) in &sections.synopsis {
        let mut parent = None;
        let mut lo: Option<Vec<f64>> = None;
        let mut hi: Option<Vec<f64>> = None;
        let mut count: Option<f64> = None;
        let bad = |reason: String| ParseError::BadRecord {
            section: SYNOPSIS,
            line: line_no,
            reason,
        };
        let parse_coords = |v: &str| -> Result<Vec<f64>, ParseError> {
            v.split(',')
                .map(|x| {
                    x.parse::<f64>().map_err(|_| ParseError::BadRecord {
                        section: SYNOPSIS,
                        line: line_no,
                        reason: format!("bad coordinate {x}"),
                    })
                })
                .collect()
        };
        for field in line.split_whitespace().skip(2) {
            if let Some(v) = field.strip_prefix("parent=") {
                if v != "-" {
                    parent = Some(
                        v.parse::<usize>()
                            .map_err(|_| bad(format!("bad parent {v}")))?,
                    );
                }
            } else if let Some(v) = field.strip_prefix("lo=") {
                lo = Some(parse_coords(v)?);
            } else if let Some(v) = field.strip_prefix("hi=") {
                hi = Some(parse_coords(v)?);
            } else if let Some(v) = field.strip_prefix("count=") {
                count = Some(
                    v.parse::<f64>()
                        .map_err(|_| bad(format!("bad count {v}")))?,
                );
            }
        }
        let lo = lo.ok_or_else(|| bad("missing lo".into()))?;
        let hi = hi.ok_or_else(|| bad("missing hi".into()))?;
        if lo.len() != dims || hi.len() != dims {
            return Err(bad("coordinate dimensionality mismatch".into()));
        }
        raw.push(Raw {
            line: line_no,
            parent,
            rect: Rect::new(&lo, &hi),
            count: count.ok_or_else(|| bad("missing count".into()))?,
        });
    }
    if raw.len() != nodes {
        return Err(ParseError::CountMismatch {
            section: SYNOPSIS,
            line: header_line,
            expected: nodes,
            found: raw.len(),
        });
    }

    // rebuild the tree: arena order guarantees parents come first and
    // children of one parent are contiguous
    let mut tree = Tree::with_root(raw[0].rect);
    let mut i = 1usize;
    while i < raw.len() {
        let parent = raw[i].parent.ok_or(ParseError::BadRecord {
            section: SYNOPSIS,
            line: raw[i].line,
            reason: "non-root node without parent".into(),
        })?;
        let mut group = vec![raw[i].rect];
        let mut j = i + 1;
        while j < raw.len() && raw[j].parent == Some(parent) {
            group.push(raw[j].rect);
            j += 1;
        }
        if parent >= i {
            return Err(ParseError::BadRecord {
                section: SYNOPSIS,
                line: raw[i].line,
                reason: "parent appears after child".into(),
            });
        }
        tree.add_children(NodeId::from_index(parent), group);
        i = j;
    }
    let counts: Vec<f64> = raw.iter().map(|r| r.count).collect();
    Ok(SpatialSynopsis::from_parts(tree, counts, "imported"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PointSet;
    use crate::quadtree::SplitConfig;
    use crate::query::{RangeCountSynopsis, RangeQuery};
    use crate::synopsis::privtree_synopsis;
    use privtree_dp::budget::Epsilon;
    use privtree_dp::rng::seeded;
    use rand::RngExt;

    fn sample_synopsis() -> SpatialSynopsis {
        let mut rng = seeded(1);
        let mut ps = PointSet::new(2);
        for _ in 0..5000 {
            ps.push(&[rng.random::<f64>() * 0.3, rng.random::<f64>() * 0.3]);
        }
        privtree_synopsis(
            &ps,
            Rect::unit(2),
            SplitConfig::full(2),
            Epsilon::new(1.0).unwrap(),
            &mut seeded(2),
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_answers() {
        let syn = sample_synopsis();
        let text = to_text(&syn);
        let back = from_text(&text).unwrap();
        assert_eq!(back.node_count(), syn.node_count());
        for q in [
            Rect::new(&[0.0, 0.0], &[0.3, 0.3]),
            Rect::new(&[0.1, 0.05], &[0.77, 0.5]),
            Rect::unit(2),
        ] {
            let q = RangeQuery::new(q);
            assert!(
                (syn.answer(&q) - back.answer(&q)).abs() < 1e-9,
                "answers diverge on {}",
                q.rect
            );
        }
    }

    #[test]
    fn header_is_self_describing() {
        let text = to_text(&sample_synopsis());
        let mut lines = text.lines();
        let manifest = lines.next().unwrap();
        assert_eq!(manifest, "privtree-manifest v1 sections=synopsis");
        let header = lines.next().unwrap();
        assert!(header.contains("dims=2"));
        assert!(header.contains("label=PrivTree"));
    }

    #[test]
    fn manifestless_input_still_parses() {
        // the pre-manifest v1 format: synopsis header first
        let text = to_text(&sample_synopsis());
        let without: String = text.lines().skip(1).fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
        let back = from_text(&without).unwrap();
        assert_eq!(back.node_count(), sample_synopsis().node_count());
    }

    #[test]
    fn manifest_must_match_sections() {
        let text = to_text(&sample_synopsis());
        // declare a grid that is not there
        let lying = text.replacen("sections=synopsis", "sections=synopsis,grid", 1);
        assert!(matches!(
            from_text(&lying),
            Err(ParseError::MissingSection {
                section: "grid",
                ..
            })
        ));
        // unknown section name
        let unknown = text.replacen("sections=synopsis", "sections=synopsis,bogus", 1);
        assert!(matches!(
            from_text(&unknown),
            Err(ParseError::BadHeader {
                section: "manifest",
                line: 1,
                ..
            })
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            from_text(""),
            Err(ParseError::MissingSection {
                section: "synopsis",
                ..
            })
        ));
        assert!(matches!(
            from_text("not a synopsis\n"),
            Err(ParseError::BadHeader {
                section: "synopsis",
                line: 1,
                ..
            })
        ));
        let bad_body =
            "privtree-synopsis v1 dims=2 nodes=2\nnode 0 parent=- lo=0,0 hi=1,1 count=5\n";
        match from_text(bad_body) {
            Err(ParseError::CountMismatch {
                section: "synopsis",
                line: 1,
                expected: 2,
                found: 1,
            }) => {}
            other => panic!("expected a localized count mismatch, got {other:?}"),
        }
    }

    #[test]
    fn errors_name_section_and_line() {
        let text = "privtree-manifest v1 sections=synopsis\n\
                    privtree-synopsis v1 dims=2 nodes=2\n\
                    node 0 parent=- lo=0,0 hi=1,1 count=5\n\
                    node 1 parent=0 lo=0,zz hi=1,1 count=5\n";
        match from_text(text) {
            Err(ParseError::BadRecord {
                section: "synopsis",
                line: 4,
                reason,
            }) => assert!(reason.contains("zz"), "reason: {reason}"),
            other => panic!("expected a localized record error, got {other:?}"),
        }
        assert_eq!(
            from_text(text).unwrap_err().to_string(),
            "bad synopsis record at line 4: bad coordinate zz"
        );
    }

    #[test]
    fn frozen_round_trip_preserves_answers() {
        let syn = sample_synopsis();
        let frozen = syn.freeze();
        let text = frozen_to_text(&frozen);
        assert_eq!(text, to_text(&syn), "frozen and tree-walk emit one format");
        let back = frozen_from_text(&text).unwrap();
        assert_eq!(back.node_count(), frozen.node_count());
        let q = RangeQuery::new(Rect::new(&[0.05, 0.1], &[0.4, 0.33]));
        assert!((back.answer(&q) - frozen.answer(&q)).abs() < 1e-9);
    }

    #[test]
    fn grid_routed_round_trip_is_bit_exact() {
        use crate::grid_route::GridRoutedSynopsis;
        let frozen = sample_synopsis().freeze();
        let grid = GridRoutedSynopsis::with_bins(frozen, &[9, 7]).unwrap();
        let text = grid_routed_to_text(&grid);
        assert!(text.starts_with("privtree-manifest v1 sections=synopsis,grid\n"));
        assert!(text.contains("privtree-grid v1 bins=9,7"));
        let back = grid_routed_from_text(&text).unwrap();
        assert_eq!(back.grid().bins(), grid.grid().bins());
        assert_eq!(back.grid().anchors(), grid.grid().anchors());
        let mut rng = seeded(40);
        for _ in 0..100 {
            let a: f64 = rng.random();
            let b: f64 = rng.random();
            let c: f64 = rng.random();
            let d: f64 = rng.random();
            let q = RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]));
            assert_eq!(
                grid.answer(&q).to_bits(),
                back.answer(&q).to_bits(),
                "round-tripped grid diverged on {}",
                q.rect
            );
        }
    }

    #[test]
    fn release_from_text_loads_both_shapes_in_one_pass() {
        use crate::grid_route::GridRoutedSynopsis;
        let frozen = sample_synopsis().freeze();
        // a plain file: arena, no grid
        let (plain, grid) = release_from_text(&frozen_to_text(&frozen)).unwrap();
        assert!(grid.is_none());
        assert_eq!(plain.node_count(), frozen.node_count());
        // a gridded file: arena plus the shipped grid, bit-exact
        let engine = GridRoutedSynopsis::with_bins(frozen, &[6, 4]).unwrap();
        let (arena, grid) = release_from_text(&grid_routed_to_text(&engine)).unwrap();
        let grid = grid.expect("grid section shipped");
        assert_eq!(grid.bins(), engine.grid().bins());
        assert_eq!(grid.anchors(), engine.grid().anchors());
        assert_eq!(arena.node_count(), engine.frozen().node_count());
    }

    #[test]
    fn frozen_parse_ignores_a_trailing_grid_section() {
        use crate::grid_route::GridRoutedSynopsis;
        let frozen = sample_synopsis().freeze();
        let grid = GridRoutedSynopsis::with_bins(frozen.clone(), &[5, 5]).unwrap();
        let text = grid_routed_to_text(&grid);
        let back = frozen_from_text(&text).unwrap();
        assert_eq!(back.node_count(), frozen.node_count());
        let q = RangeQuery::new(Rect::new(&[0.1, 0.1], &[0.3, 0.2]));
        assert_eq!(back.answer(&q).to_bits(), frozen.answer(&q).to_bits());
    }

    #[test]
    fn grid_section_is_validated() {
        use crate::grid_route::GridRoutedSynopsis;
        let frozen = sample_synopsis().freeze();
        let grid = GridRoutedSynopsis::with_bins(frozen, &[3, 3]).unwrap();
        let text = grid_routed_to_text(&grid);
        // no grid section at all
        assert!(matches!(
            grid_routed_from_text(&to_text(&sample_synopsis())),
            Err(ParseError::MissingSection {
                section: "grid",
                ..
            })
        ));
        // truncated cell list: the mismatch is reported against the grid
        // header's line
        let truncated =
            text.lines()
                .take(text.lines().count() - 1)
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                });
        match grid_routed_from_text(&truncated) {
            Err(ParseError::CountMismatch {
                section: "grid",
                expected: 9,
                found: 8,
                ..
            }) => {}
            other => panic!("expected a grid count mismatch, got {other:?}"),
        }
        // an anchor that is out of range (or unparseable once mangled)
        let corrupted = text.replacen("anchor=", "anchor=999999", 1);
        assert!(matches!(
            grid_routed_from_text(&corrupted),
            Err(ParseError::BadRecord {
                section: "grid",
                ..
            })
        ));
    }

    #[test]
    fn single_node_synopsis() {
        let tree = privtree_core::tree::Tree::with_root(Rect::unit(2));
        let syn = SpatialSynopsis::from_parts(tree, vec![42.0], "tiny");
        let back = from_text(&to_text(&syn)).unwrap();
        let q = RangeQuery::new(Rect::unit(2));
        assert_eq!(back.answer(&q), 42.0);
    }
}
