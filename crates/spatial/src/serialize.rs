//! Plain-text serialization of released synopses.
//!
//! A differentially private release is only useful if it can leave the
//! process that computed it. The format is line-oriented and
//! self-describing:
//!
//! ```text
//! privtree-synopsis v1 dims=2 nodes=5 label=PrivTree
//! node 0 parent=- lo=0,0 hi=1,1 count=1000.5
//! node 1 parent=0 lo=0,0 hi=0.5,0.5 count=250.25
//! …
//! ```
//!
//! Children must appear after their parents (the arena order the builders
//! produce), and each parent's children must be contiguous.
//!
//! A grid-routed release ([`crate::grid_route::GridRoutedSynopsis`])
//! appends a `privtree-grid v1` section after the node lines — per-cell
//! anchors and exact contributions in row-major order — so the
//! accelerator's precomputation ships with the release instead of being
//! redone at load time ([`grid_routed_to_text`]/[`grid_routed_from_text`];
//! the summed-area table is rebuilt deterministically from the values, so
//! a round trip answers bit-identically).

use crate::frozen::FrozenSynopsis;
use crate::geom::Rect;
use crate::grid_route::{CellGrid, GridRoutedSynopsis};
use crate::query::RangeCountSynopsis;
use crate::synopsis::SpatialSynopsis;
use privtree_core::tree::{NodeId, Tree};

/// Serialization failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A node line could not be parsed.
    BadNode { line: usize, reason: String },
    /// The node count in the header does not match the body.
    CountMismatch { expected: usize, found: usize },
    /// The grid section is missing, malformed, or inconsistent with the
    /// release it is attached to.
    BadGrid(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(h) => write!(f, "bad synopsis header: {h}"),
            ParseError::BadNode { line, reason } => {
                write!(f, "bad node at line {line}: {reason}")
            }
            ParseError::CountMismatch { expected, found } => {
                write!(f, "expected {expected} nodes, found {found}")
            }
            ParseError::BadGrid(reason) => write!(f, "bad grid section: {reason}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a synopsis to the v1 text format.
pub fn to_text(synopsis: &SpatialSynopsis) -> String {
    let tree = synopsis.tree();
    let dims = tree.payload(tree.root()).dims();
    let mut out = String::new();
    out.push_str(&format!(
        "privtree-synopsis v1 dims={} nodes={} label={}\n",
        dims,
        tree.len(),
        synopsis.label()
    ));
    for id in tree.ids() {
        let rect = tree.payload(id);
        let parent = match tree.parent(id) {
            Some(p) => p.index().to_string(),
            None => "-".to_string(),
        };
        let fmt_coords = |c: &[f64]| {
            c.iter()
                .map(|x| format!("{x:.17e}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!(
            "node {} parent={} lo={} hi={} count={:.17e}\n",
            id.index(),
            parent,
            fmt_coords(rect.lo()),
            fmt_coords(rect.hi()),
            synopsis.counts()[id.index()]
        ));
    }
    out
}

/// Serialize a frozen synopsis: thaw to the tree view (lossless, same
/// arena order) and emit the same v1 text format, so frozen and tree-walk
/// releases interchange freely on disk.
pub fn frozen_to_text(synopsis: &FrozenSynopsis) -> String {
    to_text(&synopsis.thaw())
}

/// Parse the v1 text format directly into the read-optimized
/// representation.
pub fn frozen_from_text(text: &str) -> Result<FrozenSynopsis, ParseError> {
    Ok(from_text(text)?.freeze())
}

/// Serialize a grid-routed release: the v1 synopsis text followed by a
/// `privtree-grid v1` section carrying every cell's anchor and exact
/// contribution (17 significant digits, so values round-trip bit-exactly).
pub fn grid_routed_to_text(synopsis: &GridRoutedSynopsis) -> String {
    let mut out = frozen_to_text(synopsis.frozen());
    let grid = synopsis.grid();
    let bins = grid
        .bins()
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join(",");
    out.push_str(&format!("privtree-grid v1 bins={bins}\n"));
    for (i, (&a, v)) in grid.anchors().iter().zip(grid.values()).enumerate() {
        out.push_str(&format!("cell {i} anchor={a} value={v:.17e}\n"));
    }
    out
}

/// Parse a grid-routed release: the synopsis part is parsed as usual, the
/// grid section is validated (cell count, anchors in range and covering
/// their cells) and its summed-area table rebuilt deterministically, so
/// the result answers bit-identically to the serialized engine.
pub fn grid_routed_from_text(text: &str) -> Result<GridRoutedSynopsis, ParseError> {
    let marker = "privtree-grid v1 ";
    let pos = text
        .find(marker)
        .ok_or_else(|| ParseError::BadGrid("missing privtree-grid section".into()))?;
    let frozen = frozen_from_text(&text[..pos])?;
    let mut lines = text[pos..].lines();
    let header = lines.next().expect("marker guarantees a header line");
    let bins: Vec<usize> = header
        .split_whitespace()
        .find_map(|f| f.strip_prefix("bins="))
        .ok_or_else(|| ParseError::BadGrid(format!("no bins= in header: {header}")))?
        .split(',')
        .map(|b| {
            b.parse::<usize>()
                .map_err(|_| ParseError::BadGrid(format!("bad bin count {b}")))
        })
        .collect::<Result<_, _>>()?;
    let cells: usize = bins.iter().product();
    let mut anchors = Vec::with_capacity(cells);
    let mut values = Vec::with_capacity(cells);
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let bad = |reason: String| ParseError::BadGrid(format!("{reason} in line: {line}"));
        let mut fields = line.split_whitespace();
        if fields.next() != Some("cell") {
            return Err(bad("expected a cell record".into()));
        }
        let index: usize = fields
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad cell index".into()))?;
        if index != anchors.len() {
            return Err(bad(format!("cell {index} out of order")));
        }
        let mut anchor: Option<u32> = None;
        let mut value: Option<f64> = None;
        for field in fields {
            if let Some(v) = field.strip_prefix("anchor=") {
                anchor = Some(v.parse().map_err(|_| bad("bad anchor".into()))?);
            } else if let Some(v) = field.strip_prefix("value=") {
                value = Some(v.parse().map_err(|_| bad("bad value".into()))?);
            }
        }
        anchors.push(anchor.ok_or_else(|| bad("missing anchor".into()))?);
        values.push(value.ok_or_else(|| bad("missing value".into()))?);
    }
    if anchors.len() != cells {
        return Err(ParseError::BadGrid(format!(
            "expected {cells} cells, found {}",
            anchors.len()
        )));
    }
    let grid = CellGrid::from_parts(&frozen, &bins, anchors, values)
        .map_err(|e| ParseError::BadGrid(e.to_string()))?;
    Ok(GridRoutedSynopsis::from_prebuilt(frozen, grid))
}

/// Parse the v1 text format back into a synopsis.
pub fn from_text(text: &str) -> Result<SpatialSynopsis, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("empty input".into()))?;
    let mut dims = 0usize;
    let mut nodes = 0usize;
    if !header.starts_with("privtree-synopsis v1 ") {
        return Err(ParseError::BadHeader(header.to_string()));
    }
    for field in header.split_whitespace().skip(2) {
        if let Some(v) = field.strip_prefix("dims=") {
            dims = v
                .parse()
                .map_err(|_| ParseError::BadHeader(header.to_string()))?;
        } else if let Some(v) = field.strip_prefix("nodes=") {
            nodes = v
                .parse()
                .map_err(|_| ParseError::BadHeader(header.to_string()))?;
        }
    }
    if dims == 0 || nodes == 0 {
        return Err(ParseError::BadHeader(header.to_string()));
    }

    // collect raw node records first
    struct Raw {
        parent: Option<usize>,
        rect: Rect,
        count: f64,
    }
    let mut raw: Vec<Raw> = Vec::with_capacity(nodes);
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut parent = None;
        let mut lo: Option<Vec<f64>> = None;
        let mut hi: Option<Vec<f64>> = None;
        let mut count: Option<f64> = None;
        let bad = |reason: &str| ParseError::BadNode {
            line: lineno + 1,
            reason: reason.to_string(),
        };
        let parse_coords = |v: &str, lineno: usize| -> Result<Vec<f64>, ParseError> {
            v.split(',')
                .map(|x| {
                    x.parse::<f64>().map_err(|_| ParseError::BadNode {
                        line: lineno + 1,
                        reason: format!("bad coordinate {x}"),
                    })
                })
                .collect()
        };
        for field in line.split_whitespace().skip(2) {
            if let Some(v) = field.strip_prefix("parent=") {
                if v != "-" {
                    parent = Some(v.parse::<usize>().map_err(|_| bad("bad parent"))?);
                }
            } else if let Some(v) = field.strip_prefix("lo=") {
                lo = Some(parse_coords(v, lineno)?);
            } else if let Some(v) = field.strip_prefix("hi=") {
                hi = Some(parse_coords(v, lineno)?);
            } else if let Some(v) = field.strip_prefix("count=") {
                count = Some(v.parse::<f64>().map_err(|_| bad("bad count"))?);
            }
        }
        let lo = lo.ok_or_else(|| bad("missing lo"))?;
        let hi = hi.ok_or_else(|| bad("missing hi"))?;
        if lo.len() != dims || hi.len() != dims {
            return Err(bad("coordinate dimensionality mismatch"));
        }
        raw.push(Raw {
            parent,
            rect: Rect::new(&lo, &hi),
            count: count.ok_or_else(|| bad("missing count"))?,
        });
    }
    if raw.len() != nodes {
        return Err(ParseError::CountMismatch {
            expected: nodes,
            found: raw.len(),
        });
    }

    // rebuild the tree: arena order guarantees parents come first and
    // children of one parent are contiguous
    let mut tree = Tree::with_root(raw[0].rect);
    let mut i = 1usize;
    while i < raw.len() {
        let parent = raw[i].parent.ok_or(ParseError::BadNode {
            line: i + 2,
            reason: "non-root node without parent".into(),
        })?;
        let mut group = vec![raw[i].rect];
        let mut j = i + 1;
        while j < raw.len() && raw[j].parent == Some(parent) {
            group.push(raw[j].rect);
            j += 1;
        }
        if parent >= i {
            return Err(ParseError::BadNode {
                line: i + 2,
                reason: "parent appears after child".into(),
            });
        }
        tree.add_children(NodeId::from_index(parent), group);
        i = j;
    }
    let counts: Vec<f64> = raw.iter().map(|r| r.count).collect();
    Ok(SpatialSynopsis::from_parts(tree, counts, "imported"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PointSet;
    use crate::quadtree::SplitConfig;
    use crate::query::{RangeCountSynopsis, RangeQuery};
    use crate::synopsis::privtree_synopsis;
    use privtree_dp::budget::Epsilon;
    use privtree_dp::rng::seeded;
    use rand::RngExt;

    fn sample_synopsis() -> SpatialSynopsis {
        let mut rng = seeded(1);
        let mut ps = PointSet::new(2);
        for _ in 0..5000 {
            ps.push(&[rng.random::<f64>() * 0.3, rng.random::<f64>() * 0.3]);
        }
        privtree_synopsis(
            &ps,
            Rect::unit(2),
            SplitConfig::full(2),
            Epsilon::new(1.0).unwrap(),
            &mut seeded(2),
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_answers() {
        let syn = sample_synopsis();
        let text = to_text(&syn);
        let back = from_text(&text).unwrap();
        assert_eq!(back.node_count(), syn.node_count());
        for q in [
            Rect::new(&[0.0, 0.0], &[0.3, 0.3]),
            Rect::new(&[0.1, 0.05], &[0.77, 0.5]),
            Rect::unit(2),
        ] {
            let q = RangeQuery::new(q);
            assert!(
                (syn.answer(&q) - back.answer(&q)).abs() < 1e-9,
                "answers diverge on {}",
                q.rect
            );
        }
    }

    #[test]
    fn header_is_self_describing() {
        let text = to_text(&sample_synopsis());
        let header = text.lines().next().unwrap();
        assert!(header.contains("dims=2"));
        assert!(header.contains("label=PrivTree"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(from_text(""), Err(ParseError::BadHeader(_))));
        assert!(matches!(
            from_text("not a synopsis\n"),
            Err(ParseError::BadHeader(_))
        ));
        let bad_body =
            "privtree-synopsis v1 dims=2 nodes=2\nnode 0 parent=- lo=0,0 hi=1,1 count=5\n";
        assert!(matches!(
            from_text(bad_body),
            Err(ParseError::CountMismatch { .. })
        ));
    }

    #[test]
    fn rejects_corrupted_coordinates() {
        let text = "privtree-synopsis v1 dims=2 nodes=1\nnode 0 parent=- lo=0,zz hi=1,1 count=5\n";
        assert!(matches!(from_text(text), Err(ParseError::BadNode { .. })));
    }

    #[test]
    fn frozen_round_trip_preserves_answers() {
        let syn = sample_synopsis();
        let frozen = syn.freeze();
        let text = frozen_to_text(&frozen);
        assert_eq!(text, to_text(&syn), "frozen and tree-walk emit one format");
        let back = frozen_from_text(&text).unwrap();
        assert_eq!(back.node_count(), frozen.node_count());
        let q = RangeQuery::new(Rect::new(&[0.05, 0.1], &[0.4, 0.33]));
        assert!((back.answer(&q) - frozen.answer(&q)).abs() < 1e-9);
    }

    #[test]
    fn grid_routed_round_trip_is_bit_exact() {
        use crate::grid_route::GridRoutedSynopsis;
        let frozen = sample_synopsis().freeze();
        let grid = GridRoutedSynopsis::with_bins(frozen, &[9, 7]).unwrap();
        let text = grid_routed_to_text(&grid);
        assert!(text.contains("privtree-grid v1 bins=9,7"));
        let back = grid_routed_from_text(&text).unwrap();
        assert_eq!(back.grid().bins(), grid.grid().bins());
        assert_eq!(back.grid().anchors(), grid.grid().anchors());
        let mut rng = seeded(40);
        for _ in 0..100 {
            let a: f64 = rng.random();
            let b: f64 = rng.random();
            let c: f64 = rng.random();
            let d: f64 = rng.random();
            let q = RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]));
            assert_eq!(
                grid.answer(&q).to_bits(),
                back.answer(&q).to_bits(),
                "round-tripped grid diverged on {}",
                q.rect
            );
        }
    }

    #[test]
    fn grid_section_is_validated() {
        use crate::grid_route::GridRoutedSynopsis;
        let frozen = sample_synopsis().freeze();
        let grid = GridRoutedSynopsis::with_bins(frozen, &[3, 3]).unwrap();
        let text = grid_routed_to_text(&grid);
        // no grid section at all
        assert!(matches!(
            grid_routed_from_text(&to_text(&sample_synopsis())),
            Err(ParseError::BadGrid(_))
        ));
        // truncated cell list
        let truncated =
            text.lines()
                .take(text.lines().count() - 1)
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                });
        assert!(matches!(
            grid_routed_from_text(&truncated),
            Err(ParseError::BadGrid(_))
        ));
        // an anchor that is out of range (or unparseable once mangled)
        let corrupted = text.replacen("anchor=", "anchor=999999", 1);
        assert!(matches!(
            grid_routed_from_text(&corrupted),
            Err(ParseError::BadGrid(_))
        ));
    }

    #[test]
    fn single_node_synopsis() {
        let tree = privtree_core::tree::Tree::with_root(Rect::unit(2));
        let syn = SpatialSynopsis::from_parts(tree, vec![42.0], "tiny");
        let back = from_text(&to_text(&syn)).unwrap();
        let q = RangeQuery::new(Rect::unit(2));
        assert_eq!(back.answer(&q), 42.0);
    }
}
