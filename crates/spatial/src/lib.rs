//! Spatial substrate and the PrivTree application to spatial data
//! (Sections 2.2, 3, and 6.1 of the paper).
//!
//! * [`geom`] — d-dimensional axis-aligned rectangles (half-open boxes).
//! * [`columns`] — owned-or-borrowed column storage ([`columns::Column`])
//!   backing the frozen arrays, so releases can be served either from
//!   process-owned `Vec`s or zero-copy from memory-mapped catalog files.
//! * [`dataset`] — flat point storage with bounding boxes.
//! * [`index`] — a bucket-grid index for *exact* range counts (ground truth
//!   for the 10,000-query workloads of Section 6.1).
//! * [`quadtree`] — the quadtree / 2^i-ary [`privtree_core::TreeDomain`]
//!   with in-place point partitioning; `RefCell`-free, `Send`, and able
//!   to split a whole frontier level as one batch fanned out across the
//!   persistent `privtree-runtime` worker pool (default `parallel`
//!   feature; bit-identical to sequential for every worker count).
//! * [`query`] — range-count queries and the `answer`/`answer_batch`
//!   synopsis interface.
//! * [`frozen`] — [`frozen::FrozenSynopsis`], the read-optimized
//!   structure-of-arrays flattening of a release for serving workloads:
//!   allocation-free single queries (thread-local traversal stack) and
//!   pool-chunked batches.
//! * [`grid_route`] — [`grid_route::GridRoutedSynopsis`], the grid-routed
//!   accelerator over a frozen arena: a dense uniform cell grid built at
//!   freeze time (per-cell anchors + summed-area table of exact cell
//!   contributions) answers the interior of a query in O(2^d) lookups and
//!   the boundary shell with short cell-anchored traversals; large
//!   batches are Morton-reordered for cache locality.
//! * [`sharded`] — [`sharded::ShardedSynopsis`], multi-arena serving with
//!   domain-based query routing: one frozen arena per epoch/region shard
//!   (or per cut subtree of one release, answering bit-identically to the
//!   unsharded arena), optionally grid-routing each shard descent.
//! * [`serialize`] — plain-text export/import of released synopses,
//!   including the precomputed cell grid alongside a release.
//! * [`synopsis`] — private spatial synopses: PrivTree + noisy leaf counts
//!   (Section 3.4) or SimpleTree with its own per-node counts, answered
//!   with the 4-case top-down traversal of Section 2.2.

pub mod columns;
pub mod dataset;
pub mod frozen;
pub mod geom;
pub mod grid_route;
pub mod index;
pub mod quadtree;
pub mod query;
pub mod serialize;
pub mod sharded;
pub mod synopsis;

pub use columns::{Column, ColumnError, ColumnScalar, StableBytes};
pub use dataset::PointSet;
pub use frozen::{FlatLayoutError, FrozenSynopsis};
pub use geom::Rect;
pub use grid_route::{CellGrid, CellGridParts, GridRouteError, GridRoutedSynopsis};
pub use index::GridIndex;
pub use quadtree::{QuadDomain, QuadNode, SplitConfig};
pub use query::{RangeCountSynopsis, RangeQuery};
pub use sharded::{ShardError, ShardHandle, ShardedSynopsis};
pub use synopsis::{exact_synopsis, privtree_synopsis, simple_tree_synopsis, SpatialSynopsis};

/// Maximum supported dimensionality (the paper's datasets are 2-d and 4-d;
/// fixed-size arrays keep geometry allocation-free).
pub const MAX_DIMS: usize = 8;
