//! Axis-aligned boxes in up to [`crate::MAX_DIMS`] dimensions.
//!
//! All regions are half-open `[lo, hi)` in every dimension, so a split
//! partitions its parent exactly — every point belongs to exactly one
//! child, matching the disjoint sub-domain semantics of Section 2.2.

use crate::MAX_DIMS;

/// A d-dimensional half-open axis-aligned box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    lo: [f64; MAX_DIMS],
    hi: [f64; MAX_DIMS],
    dims: u8,
}

impl Rect {
    /// Box spanning `lo[k] ≤ x[k] < hi[k]` for each dimension `k`.
    ///
    /// Panics if dimensions mismatch, exceed [`crate::MAX_DIMS`],
    /// or any `lo[k] > hi[k]`.
    pub fn new(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "lo/hi dimension mismatch");
        assert!(!lo.is_empty() && lo.len() <= MAX_DIMS, "bad dimensionality");
        assert!(
            lo.iter()
                .zip(hi)
                .all(|(a, b)| a <= b && a.is_finite() && b.is_finite()),
            "lo must be <= hi and finite"
        );
        let mut l = [0.0; MAX_DIMS];
        let mut h = [0.0; MAX_DIMS];
        l[..lo.len()].copy_from_slice(lo);
        h[..hi.len()].copy_from_slice(hi);
        Self {
            lo: l,
            hi: h,
            dims: lo.len() as u8,
        }
    }

    /// The unit cube `[0,1)^d`.
    pub fn unit(dims: usize) -> Self {
        Self::new(&vec![0.0; dims], &vec![1.0; dims])
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims as usize
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo[..self.dims as usize]
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi[..self.dims as usize]
    }

    /// Side length along dimension `k`.
    #[inline]
    pub fn side(&self, k: usize) -> f64 {
        self.hi[k] - self.lo[k]
    }

    /// d-dimensional volume (area for d = 2), the `|·|` of Section 2.2.
    pub fn volume(&self) -> f64 {
        (0..self.dims()).map(|k| self.side(k)).product()
    }

    /// Does this box contain the point (half-open semantics)?
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dims());
        (0..self.dims()).all(|k| p[k] >= self.lo[k] && p[k] < self.hi[k])
    }

    /// Is `other` entirely inside `self`?
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims, other.dims);
        (0..self.dims()).all(|k| other.lo[k] >= self.lo[k] && other.hi[k] <= self.hi[k])
    }

    /// Do the interiors overlap? (Shared edges of half-open boxes do not
    /// count as overlap.)
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims, other.dims);
        (0..self.dims()).all(|k| self.lo[k] < other.hi[k] && other.lo[k] < self.hi[k])
    }

    /// The overlap region, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let d = self.dims();
        let mut lo = [0.0; MAX_DIMS];
        let mut hi = [0.0; MAX_DIMS];
        for k in 0..d {
            lo[k] = self.lo[k].max(other.lo[k]);
            hi[k] = self.hi[k].min(other.hi[k]);
        }
        Some(Rect {
            lo,
            hi,
            dims: self.dims,
        })
    }

    /// Fraction of this box's volume that overlaps `q` — the
    /// `|q ∩ dom(v)| / |dom(v)|` factor used for partially covered leaves
    /// in Section 2.2. Zero-volume boxes contribute 0.
    pub fn overlap_fraction(&self, q: &Rect) -> f64 {
        let vol = self.volume();
        if vol <= 0.0 {
            return 0.0;
        }
        match self.intersection(q) {
            Some(i) => i.volume() / vol,
            None => 0.0,
        }
    }

    /// Midpoint along dimension `k`.
    #[inline]
    pub fn midpoint(&self, k: usize) -> f64 {
        0.5 * (self.lo[k] + self.hi[k])
    }

    /// Bisect the `split_dims` listed (each appearing once), producing
    /// `2^split_dims.len()` children that partition `self`. Child `j`'s bit
    /// `b` of `j` selects the upper half of `split_dims[b]`.
    pub fn bisect(&self, split_dims: &[usize]) -> Vec<Rect> {
        let m = split_dims.len();
        assert!(m >= 1 && m <= self.dims());
        let mut out = Vec::with_capacity(1 << m);
        for j in 0..(1usize << m) {
            let mut lo = self.lo;
            let mut hi = self.hi;
            for (b, &k) in split_dims.iter().enumerate() {
                let mid = self.midpoint(k);
                if (j >> b) & 1 == 0 {
                    hi[k] = mid;
                } else {
                    lo[k] = mid;
                }
            }
            out.push(Rect {
                lo,
                hi,
                dims: self.dims,
            });
        }
        out
    }

    /// Index of the child (as produced by [`Rect::bisect`] with the same
    /// `split_dims`) containing point `p`.
    #[inline]
    pub fn child_index_of(&self, split_dims: &[usize], p: &[f64]) -> usize {
        let mut j = 0usize;
        for (b, &k) in split_dims.iter().enumerate() {
            if p[k] >= self.midpoint(k) {
                j |= 1 << b;
            }
        }
        j
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for k in 0..self.dims() {
            if k > 0 {
                write!(f, " x ")?;
            }
            write!(f, "{:.4}..{:.4}", self.lo[k], self.hi[k])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let r = Rect::new(&[0.0, 1.0], &[2.0, 4.0]);
        assert_eq!(r.dims(), 2);
        assert_eq!(r.lo(), &[0.0, 1.0]);
        assert_eq!(r.hi(), &[2.0, 4.0]);
        assert_eq!(r.side(0), 2.0);
        assert_eq!(r.volume(), 6.0);
    }

    #[test]
    #[should_panic(expected = "lo must be <= hi")]
    fn rejects_inverted_bounds() {
        Rect::new(&[1.0], &[0.0]);
    }

    #[test]
    fn half_open_containment() {
        let r = Rect::unit(2);
        assert!(r.contains_point(&[0.0, 0.0]));
        assert!(r.contains_point(&[0.999, 0.999]));
        assert!(!r.contains_point(&[1.0, 0.5]));
        assert!(!r.contains_point(&[0.5, 1.0]));
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(&[0.0, 0.0], &[2.0, 2.0]);
        let b = Rect::new(&[1.0, 1.0], &[3.0, 3.0]);
        let c = Rect::new(&[2.0, 0.0], &[3.0, 1.0]); // shares an edge with a
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c), "shared edges do not overlap");
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn containment_of_rects() {
        let outer = Rect::unit(3);
        let inner = Rect::new(&[0.2, 0.2, 0.2], &[0.8, 0.8, 0.8]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
    }

    #[test]
    fn overlap_fraction_is_volume_ratio() {
        let leaf = Rect::new(&[0.0, 0.0], &[1.0, 1.0]);
        let q = Rect::new(&[0.5, 0.0], &[2.0, 1.0]);
        assert!((leaf.overlap_fraction(&q) - 0.5).abs() < 1e-12);
        let disjoint = Rect::new(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(leaf.overlap_fraction(&disjoint), 0.0);
    }

    #[test]
    fn bisect_partitions_exactly() {
        let r = Rect::unit(2);
        let kids = r.bisect(&[0, 1]);
        assert_eq!(kids.len(), 4);
        let total: f64 = kids.iter().map(Rect::volume).sum();
        assert!((total - r.volume()).abs() < 1e-12);
        // children are pairwise disjoint
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(!kids[i].intersects(&kids[j]));
            }
        }
        // every sample point lands in exactly one child, and child_index_of
        // agrees with containment
        for p in [[0.1, 0.1], [0.9, 0.2], [0.3, 0.8], [0.6, 0.6]] {
            let owners: Vec<usize> = (0..4).filter(|i| kids[*i].contains_point(&p)).collect();
            assert_eq!(owners.len(), 1);
            assert_eq!(owners[0], r.child_index_of(&[0, 1], &p));
        }
    }

    #[test]
    fn bisect_single_dim_round_robin() {
        let r = Rect::unit(2);
        let kids = r.bisect(&[1]);
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0], Rect::new(&[0.0, 0.0], &[1.0, 0.5]));
        assert_eq!(kids[1], Rect::new(&[0.0, 0.5], &[1.0, 1.0]));
    }

    #[test]
    fn four_dim_bisect() {
        let r = Rect::unit(4);
        let kids = r.bisect(&[0, 1, 2, 3]);
        assert_eq!(kids.len(), 16);
        let total: f64 = kids.iter().map(Rect::volume).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let r = Rect::unit(2);
        assert_eq!(format!("{r}"), "[0.0000..1.0000 x 0.0000..1.0000]");
    }
}
