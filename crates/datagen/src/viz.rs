//! ASCII density maps — the workspace's answer to Figure 4's dataset
//! visualizations.

use privtree_spatial::dataset::PointSet;
use privtree_spatial::geom::Rect;

const SHADES: &[u8] = b" .:-=+*#%@";

/// Render the 2-d projection of `data` onto dimensions `(dx, dy)` as an
/// ASCII heatmap of `width x height` characters, log-scaled so skewed data
/// stays legible.
pub fn ascii_density(data: &PointSet, dx: usize, dy: usize, width: usize, height: usize) -> String {
    assert!(dx < data.dims() && dy < data.dims() && dx != dy);
    assert!(width >= 2 && height >= 2);
    let dom = Rect::unit(data.dims());
    let mut grid = vec![0u64; width * height];
    for p in data.iter() {
        let cx = ((p[dx] - dom.lo()[dx]) / dom.side(dx) * width as f64) as usize;
        let cy = ((p[dy] - dom.lo()[dy]) / dom.side(dy) * height as f64) as usize;
        grid[cy.min(height - 1) * width + cx.min(width - 1)] += 1;
    }
    let max = *grid.iter().max().unwrap_or(&0);
    let mut out = String::with_capacity((width + 1) * height);
    // render top row (largest y) first so the plot is orientation-correct
    for row in (0..height).rev() {
        for col in 0..width {
            let c = grid[row * width + col];
            let shade = if c == 0 || max == 0 {
                0
            } else {
                let t = ((c as f64).ln_1p() / (max as f64).ln_1p() * (SHADES.len() - 1) as f64)
                    .ceil() as usize;
                t.clamp(1, SHADES.len() - 1)
            };
            out.push(SHADES[shade] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_expected_dimensions() {
        let ps = PointSet::from_flat(2, vec![0.1, 0.1, 0.9, 0.9]);
        let s = ascii_density(&ps, 0, 1, 20, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.len() == 20));
    }

    #[test]
    fn empty_regions_are_blank_and_dense_are_not() {
        let mut ps = PointSet::new(2);
        for _ in 0..100 {
            ps.push(&[0.05, 0.05]);
        }
        let s = ascii_density(&ps, 0, 1, 10, 10);
        let lines: Vec<&str> = s.lines().collect();
        // dense cell is bottom-left → last rendered line, first column
        assert_ne!(lines[9].as_bytes()[0], b' ');
        // far corner is empty
        assert_eq!(lines[0].as_bytes()[9], b' ');
    }

    #[test]
    fn four_d_projection() {
        let ps = PointSet::from_flat(4, vec![0.2, 0.3, 0.4, 0.5]);
        let s = ascii_density(&ps, 2, 3, 8, 8);
        assert_eq!(s.lines().count(), 8);
    }
}
