//! Range-count query workloads (Section 6.1).
//!
//! "We construct three query sets on each dataset: small, medium, and
//! large, each of which contains 10,000 randomly generated range count
//! queries. Each query in the small, medium, and large set has a region
//! that covers [0.01%, 0.1%), [0.1%, 1%), and [1%, 10%) of the data
//! domain, respectively."

use privtree_dp::rng::{derive_seed, seeded};
use privtree_spatial::geom::Rect;
use privtree_spatial::query::RangeQuery;
use rand::RngExt;

/// The three workload size classes of Section 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySize {
    /// Coverage in [0.01%, 0.1%).
    Small,
    /// Coverage in [0.1%, 1%).
    Medium,
    /// Coverage in [1%, 10%).
    Large,
}

impl QuerySize {
    /// The coverage interval `[lo, hi)` as fractions of the domain volume.
    pub fn coverage_range(self) -> (f64, f64) {
        match self {
            QuerySize::Small => (0.0001, 0.001),
            QuerySize::Medium => (0.001, 0.01),
            QuerySize::Large => (0.01, 0.1),
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            QuerySize::Small => "small",
            QuerySize::Medium => "medium",
            QuerySize::Large => "large",
        }
    }

    /// All three classes, in figure order.
    pub fn all() -> [QuerySize; 3] {
        [QuerySize::Small, QuerySize::Medium, QuerySize::Large]
    }
}

/// Generate `count` random range queries over `domain` whose volume
/// coverage is log-uniform in `size`'s range. Side lengths are split
/// across dimensions with random (Dirichlet-uniform) exponents, giving a
/// mix of aspect ratios; positions are uniform.
pub fn range_queries(domain: &Rect, size: QuerySize, count: usize, seed: u64) -> Vec<RangeQuery> {
    let (lo, hi) = size.coverage_range();
    let mut rng = seeded(derive_seed(seed, size as u64 + 101));
    let d = domain.dims();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        // log-uniform coverage
        let c = (lo.ln() + rng.random::<f64>() * (hi.ln() - lo.ln())).exp();
        // split ln c across dimensions: f_k = c^{w_k}, Σ w_k = 1, so the
        // product of the per-dimension fractions is exactly c and each
        // f_k ≤ 1
        let mut w: Vec<f64> = (0..d).map(|_| rng.random::<f64>().max(1e-9)).collect();
        let s: f64 = w.iter().sum();
        w.iter_mut().for_each(|x| *x /= s);
        let mut qlo = Vec::with_capacity(d);
        let mut qhi = Vec::with_capacity(d);
        #[allow(clippy::needless_range_loop)] // k indexes w and the domain together
        for k in 0..d {
            let frac = c.powf(w[k]);
            let len = frac * domain.side(k);
            let start = domain.lo()[k] + rng.random::<f64>() * (domain.side(k) - len);
            qlo.push(start);
            qhi.push(start + len);
        }
        out.push(RangeQuery::new(Rect::new(&qlo, &qhi)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_is_in_band() {
        let dom = Rect::unit(2);
        for size in QuerySize::all() {
            let (lo, hi) = size.coverage_range();
            for q in range_queries(&dom, size, 500, 7) {
                let c = q.coverage(&dom);
                assert!(
                    c >= lo * 0.999 && c <= hi * 1.001,
                    "{} query coverage {c} outside [{lo},{hi})",
                    size.name()
                );
            }
        }
    }

    #[test]
    fn queries_stay_inside_domain() {
        let dom = Rect::new(&[0.0, 0.0, 0.0, 0.0], &[1.0, 1.0, 1.0, 1.0]);
        for q in range_queries(&dom, QuerySize::Large, 300, 3) {
            assert!(
                dom.contains_rect(&q.rect),
                "query {} escapes domain",
                q.rect
            );
        }
    }

    #[test]
    fn deterministic_and_distinct_by_seed() {
        let dom = Rect::unit(2);
        let a = range_queries(&dom, QuerySize::Small, 10, 1);
        let b = range_queries(&dom, QuerySize::Small, 10, 1);
        let c = range_queries(&dom, QuerySize::Small, 10, 2);
        assert_eq!(a[0].rect, b[0].rect);
        assert_ne!(a[0].rect, c[0].rect);
    }

    #[test]
    fn size_classes_do_not_collide() {
        // same seed, different size class → different streams
        let dom = Rect::unit(2);
        let s = range_queries(&dom, QuerySize::Small, 5, 1);
        let l = range_queries(&dom, QuerySize::Large, 5, 1);
        assert_ne!(s[0].rect, l[0].rect);
    }

    #[test]
    fn aspect_ratios_vary() {
        let dom = Rect::unit(2);
        let qs = range_queries(&dom, QuerySize::Large, 200, 5);
        let ratios: Vec<f64> = qs.iter().map(|q| q.rect.side(0) / q.rect.side(1)).collect();
        let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 3.0, "aspect ratios too uniform: {min}..{max}");
    }
}
