//! Seeded synthetic datasets standing in for the paper's evaluation data.
//!
//! The paper evaluates on four real spatial datasets (road, Gowalla, NYC
//! taxi, Beijing taxi — Table 2) and two real sequence datasets (mooc,
//! msnbc — Table 3), none of which ship with this reproduction. Each
//! generator here is calibrated to the published characteristics
//! (cardinality, dimensionality, alphabet size, mean sequence length) and
//! to the *qualitative* property the paper's analysis leans on — the
//! skewness ordering road ≻ Gowalla and NYC ≻ Beijing, and the
//! short-vs-long sequence-length profiles of msnbc vs mooc. See DESIGN.md
//! §3 for the substitution rationale.
//!
//! Everything is deterministic given a `u64` seed.

pub mod sequence;
pub mod spatial;
pub mod viz;
pub mod workload;

pub use sequence::{mooc_like, msnbc_like, SequenceData, SequenceSpec, MOOC, MSNBC};
pub use spatial::{
    beijing_like, gowalla_like, nyc_like, road_like, SpatialSpec, BEIJING, GOWALLA, NYC, ROAD,
};
pub use workload::{range_queries, QuerySize};
