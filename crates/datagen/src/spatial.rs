//! Synthetic spatial datasets calibrated to Table 2 of the paper.
//!
//! | name    | d | n (paper)  | skew  | structure we emulate                  |
//! |---------|---|------------|-------|---------------------------------------|
//! | road    | 2 | 1,634,165  | high  | grid-aligned junctions of road networks plus inter-city highways |
//! | Gowalla | 2 |   107,091  | mid   | many Gaussian "city" clusters with power-law popularity |
//! | NYC     | 4 |    98,013  | high  | correlated pickup/drop-off pairs from tight anisotropic clusters |
//! | Beijing | 4 |    30,000  | mid   | same construction, broader clusters, more background |
//!
//! All coordinates live in the unit domain `[0,1)^d`; every private method
//! under comparison is affine-invariant, so the domain choice is harmless.

use privtree_dp::rng::{derive_seed, seeded};
use privtree_spatial::dataset::PointSet;
use rand::{Rng, RngExt};

/// Descriptor of a synthetic spatial dataset (mirrors Table 2 rows).
#[derive(Debug, Clone, Copy)]
pub struct SpatialSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Dimensionality d.
    pub dims: usize,
    /// Cardinality n in the paper.
    pub default_n: usize,
    /// One-line description for Table 2 reproduction.
    pub description: &'static str,
}

/// road: 2-d, 1,634,165 road junctions (WA + NM).
pub const ROAD: SpatialSpec = SpatialSpec {
    name: "road",
    dims: 2,
    default_n: 1_634_165,
    description: "Synthetic road-network junctions (grid-city + highway structure)",
};

/// Gowalla: 2-d, 107,091 check-ins.
pub const GOWALLA: SpatialSpec = SpatialSpec {
    name: "Gowalla",
    dims: 2,
    default_n: 107_091,
    description: "Synthetic check-ins (power-law city clusters)",
};

/// NYC: 4-d, 98,013 taxi pickup + drop-off pairs.
pub const NYC: SpatialSpec = SpatialSpec {
    name: "NYC",
    dims: 4,
    default_n: 98_013,
    description: "Synthetic taxi trips, tight correlated clusters (high skew)",
};

/// Beijing: 4-d, 30,000 taxi pickup + drop-off pairs.
pub const BEIJING: SpatialSpec = SpatialSpec {
    name: "Beijing",
    dims: 4,
    default_n: 30_000,
    description: "Synthetic taxi trips, broad clusters (moderate skew)",
};

/// Generate the dataset named by `spec` with `n` points.
pub fn generate(spec: &SpatialSpec, n: usize, seed: u64) -> PointSet {
    match spec.name {
        "road" => road_like(n, seed),
        "Gowalla" => gowalla_like(n, seed),
        "NYC" => nyc_like(n, seed),
        "Beijing" => beijing_like(n, seed),
        other => panic!("unknown spatial spec {other}"),
    }
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0 - 1e-12)
}

/// Standard normal via Box–Muller (two uniforms per call; we use one and
/// discard the pair partner for simplicity — generators are not hot paths).
fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Power-law weights `w_i ∝ (i+1)^(-alpha)`, normalized.
fn power_law_weights(k: usize, alpha: f64) -> Vec<f64> {
    let mut w: Vec<f64> = (0..k).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let s: f64 = w.iter().sum();
    w.iter_mut().for_each(|x| *x /= s);
    w
}

fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let mut t = rng.random::<f64>();
    for (i, w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Highly skewed 2-d data: junctions of grid-structured "city" road
/// networks, plus junctions strung along inter-city highways, plus a thin
/// uniform rural background. The grid snapping concentrates mass on
/// near-1-d structures, reproducing what makes the real `road` dataset
/// hard for uniform grids (Fig. 4a / Fig. 5a–c).
pub fn road_like(n: usize, seed: u64) -> PointSet {
    let mut rng = seeded(derive_seed(seed, 0x0a0d));
    let n_cities = 14;
    let centers: Vec<[f64; 2]> = (0..n_cities)
        .map(|_| [rng.random::<f64>(), rng.random::<f64>()])
        .collect();
    let weights = power_law_weights(n_cities, 1.2);
    // per-city street spacing and extent
    let spacing: Vec<f64> = (0..n_cities)
        .map(|_| 0.0006 + rng.random::<f64>() * 0.002)
        .collect();
    let extent: Vec<f64> = (0..n_cities)
        .map(|_| 0.02 + rng.random::<f64>() * 0.06)
        .collect();

    let mut ps = PointSet::new(2);
    for _ in 0..n {
        let r: f64 = rng.random();
        let p = if r < 0.80 {
            // city grid junction: junction density decays as a power law
            // from the city core (real road networks are skewed at every
            // scale, which is what defeats fixed-resolution grids), then
            // snaps to the street grid
            let c = sample_weighted(&weights, &mut rng);
            let s = spacing[c];
            let sigma = extent[c];
            let radius = sigma * rng.random::<f64>().powf(2.5) * 3.0;
            let angle = rng.random::<f64>() * std::f64::consts::TAU;
            let gx = ((radius * angle.cos()) / s).round() * s;
            let gy = ((radius * angle.sin()) / s).round() * s;
            // tiny jitter so junctions are not exact duplicates
            [
                clamp01(centers[c][0] + gx + gauss(&mut rng) * 1e-5),
                clamp01(centers[c][1] + gy + gauss(&mut rng) * 1e-5),
            ]
        } else if r < 0.95 {
            // highway junction between two cities, spaced along the road
            let a = sample_weighted(&weights, &mut rng);
            let b = sample_weighted(&weights, &mut rng);
            let t = (rng.random::<f64>() * 180.0).round() / 180.0;
            let x = centers[a][0] + t * (centers[b][0] - centers[a][0]);
            let y = centers[a][1] + t * (centers[b][1] - centers[a][1]);
            [
                clamp01(x + gauss(&mut rng) * 3e-4),
                clamp01(y + gauss(&mut rng) * 3e-4),
            ]
        } else {
            // rural background
            [rng.random::<f64>(), rng.random::<f64>()]
        };
        ps.push(&p);
    }
    ps
}

/// Moderately skewed 2-d data: many Gaussian city clusters with power-law
/// popularity over a uniform background (Fig. 4b).
pub fn gowalla_like(n: usize, seed: u64) -> PointSet {
    let mut rng = seeded(derive_seed(seed, 0x90a11a));
    let n_clusters = 150;
    let centers: Vec<[f64; 2]> = (0..n_clusters)
        .map(|_| [rng.random::<f64>(), rng.random::<f64>()])
        .collect();
    let weights = power_law_weights(n_clusters, 0.8);
    let sigmas: Vec<f64> = (0..n_clusters)
        .map(|_| 0.004 * (1.0 + 9.0 * rng.random::<f64>()))
        .collect();

    let mut ps = PointSet::new(2);
    for _ in 0..n {
        let p = if rng.random::<f64>() < 0.9 {
            let c = sample_weighted(&weights, &mut rng);
            [
                clamp01(centers[c][0] + gauss(&mut rng) * sigmas[c]),
                clamp01(centers[c][1] + gauss(&mut rng) * sigmas[c]),
            ]
        } else {
            [rng.random::<f64>(), rng.random::<f64>()]
        };
        ps.push(&p);
    }
    ps
}

/// Parameters shared by the two taxi-trip generators.
struct TaxiParams {
    n_clusters: usize,
    weight_alpha: f64,
    sigma_lo: f64,
    sigma_hi: f64,
    anisotropy: f64,
    trip_scale: f64,
    background: f64,
}

fn taxi_like(n: usize, seed: u64, p: TaxiParams) -> PointSet {
    let mut rng = seeded(seed);
    let centers: Vec<[f64; 2]> = (0..p.n_clusters)
        .map(|_| [rng.random::<f64>(), rng.random::<f64>()])
        .collect();
    let weights = power_law_weights(p.n_clusters, p.weight_alpha);
    let sigmas: Vec<[f64; 2]> = (0..p.n_clusters)
        .map(|_| {
            let base = p.sigma_lo + rng.random::<f64>() * (p.sigma_hi - p.sigma_lo);
            [base, base * p.anisotropy]
        })
        .collect();

    let sample_loc = |rng: &mut privtree_dp::rng::SeededRng| -> [f64; 2] {
        let c = sample_weighted(&weights, rng);
        [
            clamp01(centers[c][0] + gauss(rng) * sigmas[c][0]),
            clamp01(centers[c][1] + gauss(rng) * sigmas[c][1]),
        ]
    };

    let mut ps = PointSet::new(4);
    for _ in 0..n {
        if rng.random::<f64>() < p.background {
            ps.push(&[
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
            ]);
            continue;
        }
        let pickup = sample_loc(&mut rng);
        // drop-off: heavy-tailed displacement from the pickup, or an
        // independent popular destination
        let dropoff = if rng.random::<f64>() < 0.7 {
            let lap = |rng: &mut privtree_dp::rng::SeededRng| {
                let u: f64 = rng.random::<f64>() - 0.5;
                let u = if u == -0.5 { 0.5 - f64::EPSILON } else { u };
                -p.trip_scale * u.signum() * (-2.0 * u.abs()).ln_1p()
            };
            [
                clamp01(pickup[0] + lap(&mut rng)),
                clamp01(pickup[1] + lap(&mut rng)),
            ]
        } else {
            sample_loc(&mut rng)
        };
        ps.push(&[pickup[0], pickup[1], dropoff[0], dropoff[1]]);
    }
    ps
}

/// Highly skewed 4-d taxi trips: a few dominant tight clusters (pickup)
/// with correlated drop-offs (Fig. 4c).
pub fn nyc_like(n: usize, seed: u64) -> PointSet {
    taxi_like(
        n,
        derive_seed(seed, 0x4e9c),
        TaxiParams {
            n_clusters: 10,
            weight_alpha: 1.5,
            sigma_lo: 0.004,
            sigma_hi: 0.015,
            anisotropy: 4.0,
            trip_scale: 0.03,
            background: 0.02,
        },
    )
}

/// Moderately skewed 4-d taxi trips: broader clusters, flatter popularity,
/// more background (Fig. 4d).
pub fn beijing_like(n: usize, seed: u64) -> PointSet {
    taxi_like(
        n,
        derive_seed(seed, 0xbe11),
        TaxiParams {
            n_clusters: 25,
            weight_alpha: 0.5,
            sigma_lo: 0.03,
            sigma_hi: 0.10,
            anisotropy: 1.5,
            trip_scale: 0.10,
            background: 0.15,
        },
    )
}

/// A crude skewness measure: the fraction of points falling in the densest
/// 1% of grid cells — used by tests to pin the road ≻ Gowalla and
/// NYC ≻ Beijing orderings the paper's narrative depends on.
pub fn top_cell_mass(ps: &PointSet, bins_per_dim: usize) -> f64 {
    use privtree_spatial::geom::Rect;
    use privtree_spatial::index::GridIndex;
    let idx = GridIndex::build_with_bins(ps, &Rect::unit(ps.dims()), bins_per_dim);
    let mut counts: Vec<u32> = idx.bucket_counts().to_vec();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top = (counts.len() / 100).max(1);
    let top_sum: u64 = counts.iter().take(top).map(|c| *c as u64).sum();
    top_sum as f64 / ps.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_and_dims() {
        let road = road_like(10_000, 1);
        assert_eq!(road.len(), 10_000);
        assert_eq!(road.dims(), 2);
        let nyc = nyc_like(5_000, 1);
        assert_eq!(nyc.len(), 5_000);
        assert_eq!(nyc.dims(), 4);
    }

    #[test]
    fn all_points_in_unit_domain() {
        for ps in [
            road_like(5_000, 3),
            gowalla_like(5_000, 3),
            nyc_like(5_000, 3),
            beijing_like(5_000, 3),
        ] {
            for p in ps.iter() {
                for &x in p {
                    assert!((0.0..1.0).contains(&x), "coordinate {x} out of range");
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gowalla_like(1000, 9);
        let b = gowalla_like(1000, 9);
        assert_eq!(a.point(123), b.point(123));
        let c = gowalla_like(1000, 10);
        assert_ne!(a.point(123), c.point(123));
    }

    #[test]
    fn skewness_ordering_matches_paper() {
        // "the data distribution in road (resp. NYC) is more skewed than
        // that in Gowalla (resp. Beijing)"
        let road = top_cell_mass(&road_like(40_000, 7), 64);
        let gowalla = top_cell_mass(&gowalla_like(40_000, 7), 64);
        assert!(
            road > gowalla,
            "road skew {road} should exceed Gowalla skew {gowalla}"
        );
        let nyc = top_cell_mass(&nyc_like(30_000, 7), 12);
        let beijing = top_cell_mass(&beijing_like(30_000, 7), 12);
        assert!(
            nyc > beijing,
            "NYC skew {nyc} should exceed Beijing skew {beijing}"
        );
    }

    #[test]
    fn road_mass_is_strongly_concentrated() {
        let m = top_cell_mass(&road_like(40_000, 2), 64);
        assert!(m > 0.3, "road top-1%-cell mass = {m}, want heavy skew");
    }

    #[test]
    fn spec_dispatch() {
        let ps = generate(&GOWALLA, 500, 4);
        assert_eq!(ps.len(), 500);
        assert_eq!(ps.dims(), GOWALLA.dims);
    }

    #[test]
    fn table2_constants() {
        assert_eq!(ROAD.default_n, 1_634_165);
        assert_eq!(GOWALLA.default_n, 107_091);
        assert_eq!(NYC.default_n, 98_013);
        assert_eq!(BEIJING.default_n, 30_000);
        assert_eq!(ROAD.dims, 2);
        assert_eq!(NYC.dims, 4);
    }
}
