//! Synthetic sequence datasets calibrated to Table 3 of the paper.
//!
//! | name  | |I| | n (paper) | mean len | l⊤ | what we emulate              |
//! |-------|-----|-----------|----------|----|------------------------------|
//! | mooc  |  7  |    80,362 |   13.46  | 50 | long sticky sessions of MOOC learner actions |
//! | msnbc | 17  |   989,818 |    4.75  | 20 | short page-category browsing histories |
//!
//! Sequences are generated from hidden first-order Markov chains with
//! skewed symbol popularity, sticky self-transitions, and symbol-dependent
//! stopping probabilities — exactly the structure a variable-order Markov
//! model (the paper's PST) is good at capturing, and the regime where its
//! advantage over flat n-gram counting shows.

use privtree_dp::rng::{derive_seed, seeded};
use rand::{Rng, RngExt};

/// A raw synthetic sequence dataset (symbols are `0..alphabet_size`).
#[derive(Debug, Clone)]
pub struct SequenceData {
    /// The sequences, each a list of symbol ids.
    pub sequences: Vec<Vec<u8>>,
    /// Number of distinct symbols |I|.
    pub alphabet_size: usize,
    /// Dataset name.
    pub name: &'static str,
}

impl SequenceData {
    /// Total number of sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// `true` iff there are no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Mean sequence length.
    pub fn mean_length(&self) -> f64 {
        if self.sequences.is_empty() {
            return 0.0;
        }
        self.sequences.iter().map(Vec::len).sum::<usize>() as f64 / self.sequences.len() as f64
    }

    /// The q-quantile of sequence lengths (non-private; the DP version
    /// lives in `privtree_dp::quantile`).
    pub fn length_quantile(&self, q: f64) -> usize {
        let mut lens: Vec<usize> = self.sequences.iter().map(Vec::len).collect();
        lens.sort_unstable();
        let idx = ((lens.len() as f64 - 1.0) * q).round() as usize;
        lens[idx]
    }
}

/// Descriptor of a synthetic sequence dataset (mirrors Table 3 rows).
#[derive(Debug, Clone, Copy)]
pub struct SequenceSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Alphabet size |I|.
    pub alphabet: usize,
    /// Cardinality in the paper.
    pub default_n: usize,
    /// The l⊤ used in Section 6.2.
    pub l_top: usize,
    /// Mean sequence length in the paper.
    pub paper_mean_length: f64,
}

/// mooc: 7 behavior categories, 80,362 learners, mean length 13.46.
pub const MOOC: SequenceSpec = SequenceSpec {
    name: "mooc",
    alphabet: 7,
    default_n: 80_362,
    l_top: 50,
    paper_mean_length: 13.46,
};

/// msnbc: 17 URL categories, 989,818 users, mean length 4.75.
pub const MSNBC: SequenceSpec = SequenceSpec {
    name: "msnbc",
    alphabet: 17,
    default_n: 989_818,
    l_top: 20,
    paper_mean_length: 4.75,
};

fn power_law_weights(k: usize, alpha: f64) -> Vec<f64> {
    let mut w: Vec<f64> = (0..k).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let s: f64 = w.iter().sum();
    w.iter_mut().for_each(|x| *x /= s);
    w
}

fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let mut t = rng.random::<f64>();
    for (i, w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// A hidden Markov-chain sequence generator.
struct ChainParams {
    alphabet: usize,
    /// popularity exponent for the base symbol distribution
    alpha: f64,
    /// probability mass given to repeating the previous symbol
    stickiness: f64,
    /// per-symbol stop probability multiplier (symbol k stops with
    /// probability `stop_base · stop_mult[k]`)
    stop_base: f64,
    /// hard length cap (before any l⊤ truncation downstream)
    max_len: usize,
}

fn markov_sequences(n: usize, seed: u64, p: ChainParams, name: &'static str) -> SequenceData {
    let mut rng = seeded(seed);
    let base = power_law_weights(p.alphabet, p.alpha);
    // symbol-dependent stopping: popular symbols keep sessions alive,
    // the rarest symbols often end them (like "close the web page")
    let stop_mult: Vec<f64> = (0..p.alphabet)
        .map(|k| 0.5 + 1.5 * (k as f64) / (p.alphabet as f64))
        .collect();
    // per-symbol "next" distributions: sticky + neighbor-biased popularity
    let transitions: Vec<Vec<f64>> = (0..p.alphabet)
        .map(|from| {
            let mut row: Vec<f64> = (0..p.alphabet)
                .map(|to| {
                    let dist = (from as isize - to as isize).unsigned_abs() as f64;
                    base[to] * (-0.35 * dist).exp()
                })
                .collect();
            let s: f64 = row.iter().sum();
            row.iter_mut().for_each(|x| *x /= s);
            // mix in stickiness
            row.iter_mut().for_each(|x| *x *= 1.0 - p.stickiness);
            row[from] += p.stickiness;
            row
        })
        .collect();

    let mut sequences = Vec::with_capacity(n);
    for _ in 0..n {
        let mut seq = Vec::new();
        let mut cur = sample_weighted(&base, &mut rng);
        seq.push(cur as u8);
        while seq.len() < p.max_len {
            let stop_p = (p.stop_base * stop_mult[cur]).min(0.95);
            if rng.random::<f64>() < stop_p {
                break;
            }
            cur = sample_weighted(&transitions[cur], &mut rng);
            seq.push(cur as u8);
        }
        sequences.push(seq);
    }
    SequenceData {
        sequences,
        alphabet_size: p.alphabet,
        name,
    }
}

/// Generate a mooc-like dataset: 7 symbols, sticky long sessions,
/// mean length ≈ 13.5 with a heavy tail past l⊤ = 50.
pub fn mooc_like(n: usize, seed: u64) -> SequenceData {
    markov_sequences(
        n,
        derive_seed(seed, 0x3000c),
        ChainParams {
            alphabet: 7,
            alpha: 0.9,
            stickiness: 0.35,
            stop_base: 0.091,
            max_len: 220,
        },
        "mooc",
    )
}

/// Generate an msnbc-like dataset: 17 symbols, short browsing bursts,
/// mean length ≈ 4.75 with a tail past l⊤ = 20.
pub fn msnbc_like(n: usize, seed: u64) -> SequenceData {
    markov_sequences(
        n,
        derive_seed(seed, 0x35bc),
        ChainParams {
            alphabet: 17,
            alpha: 1.1,
            stickiness: 0.30,
            stop_base: 0.305,
            max_len: 120,
        },
        "msnbc",
    )
}

/// Generate by spec name.
pub fn generate(spec: &SequenceSpec, n: usize, seed: u64) -> SequenceData {
    match spec.name {
        "mooc" => mooc_like(n, seed),
        "msnbc" => msnbc_like(n, seed),
        other => panic!("unknown sequence spec {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mooc_mean_length_near_paper() {
        let d = mooc_like(20_000, 1);
        let m = d.mean_length();
        assert!(
            (m - MOOC.paper_mean_length).abs() < 2.5,
            "mooc mean length {m}, paper 13.46"
        );
    }

    #[test]
    fn msnbc_mean_length_near_paper() {
        let d = msnbc_like(20_000, 1);
        let m = d.mean_length();
        assert!(
            (m - MSNBC.paper_mean_length).abs() < 1.2,
            "msnbc mean length {m}, paper 4.75"
        );
    }

    #[test]
    fn truncation_tail_exists_like_table_3() {
        // Table 3: ~4.5% of mooc sequences exceed l⊤ = 50, ~3.2% of msnbc
        // exceed l⊤ = 20; we only require a visible few-percent tail.
        let mooc = mooc_like(20_000, 2);
        let over = mooc
            .sequences
            .iter()
            .filter(|s| s.len() > MOOC.l_top)
            .count();
        let frac = over as f64 / mooc.len() as f64;
        assert!(frac > 0.005 && frac < 0.15, "mooc over-l⊤ fraction {frac}");

        let msnbc = msnbc_like(20_000, 2);
        let over = msnbc
            .sequences
            .iter()
            .filter(|s| s.len() > MSNBC.l_top)
            .count();
        let frac = over as f64 / msnbc.len() as f64;
        assert!(frac > 0.005 && frac < 0.15, "msnbc over-l⊤ fraction {frac}");
    }

    #[test]
    fn symbols_within_alphabet() {
        let d = msnbc_like(2000, 3);
        for s in &d.sequences {
            assert!(!s.is_empty());
            for &x in s {
                assert!((x as usize) < d.alphabet_size);
            }
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let d = mooc_like(10_000, 4);
        let mut counts = vec![0usize; d.alphabet_size];
        for s in &d.sequences {
            for &x in s {
                counts[x as usize] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let max = *counts.iter().max().unwrap();
        assert!(
            max as f64 / total as f64 > 1.5 / d.alphabet_size as f64,
            "most popular symbol should dominate a uniform share"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = mooc_like(100, 5);
        let b = mooc_like(100, 5);
        assert_eq!(a.sequences, b.sequences);
    }

    #[test]
    fn length_quantile() {
        let d = SequenceData {
            sequences: vec![vec![0], vec![0; 2], vec![0; 3], vec![0; 4], vec![0; 100]],
            alphabet_size: 1,
            name: "test",
        };
        assert_eq!(d.length_quantile(0.5), 3);
        assert_eq!(d.length_quantile(1.0), 100);
    }
}
