//! Epoch-aware serving: run a `ReleaseStore` in-process, persist it to
//! an on-disk catalog, warm-start a second store from that catalog, and
//! hand the same releases to the `privtree-serve` binary.
//!
//! ```sh
//! cargo run --release --example epoch_serving
//! ```
//!
//! The example builds two per-region PrivTree releases, serves them from
//! an epoch store (snapshots are immutable; a swap rebuilds only the
//! routing arena + the swapped shard's grid), persists every serving
//! release into a `privtree-store` catalog (binary `privtree-bin v1`
//! files behind a `catalog.toml` manifest, grids included), reopens the
//! catalog cold and verifies the warm-started store answers the same
//! bits, and finally prints the matching standalone-server commands:
//!
//! ```sh
//! # build the server once
//! cargo build --release -p privtree-engine
//! # warm-start straight from the catalog (save/load verbs enabled):
//! printf 'count 0.1,0.1 0.4,0.9\nstats\nquit\n' | \
//!   target/release/privtree-serve --grids --catalog /tmp/privtree-catalog
//! # or serve a single text release over TCP:
//! target/release/privtree-serve --listen 127.0.0.1:4780 west=/tmp/west-epoch0.txt
//! ```

use privtree_suite::datagen::spatial::gowalla_like;
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::dp::rng::seeded;
use privtree_suite::engine::ReleaseStore;
use privtree_suite::spatial::dataset::PointSet;
use privtree_suite::spatial::geom::Rect;
use privtree_suite::spatial::quadtree::SplitConfig;
use privtree_suite::spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_suite::spatial::serialize::frozen_to_text;
use privtree_suite::spatial::synopsis::privtree_synopsis;
use privtree_suite::spatial::FrozenSynopsis;
use privtree_suite::store::Catalog;

/// An ε-DP release over one half of the domain for one epoch.
fn region_release(
    data: &PointSet,
    region: Rect,
    epoch: u64,
) -> Result<FrozenSynopsis, Box<dyn std::error::Error>> {
    let mut slice = PointSet::new(2);
    for p in data.iter().filter(|p| region.contains_point(p)) {
        slice.push(p);
    }
    Ok(privtree_synopsis(
        &slice,
        region,
        SplitConfig::full(2),
        Epsilon::new(1.0)?,
        &mut seeded(0xE90C ^ epoch),
    )?
    .freeze())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = gowalla_like(100_000, 42);
    let west = Rect::new(&[0.0, 0.0], &[0.5, 1.0]);
    let east = Rect::new(&[0.5, 0.0], &[1.0, 1.0]);

    // 1. Open the store: one release per region, each behind its own
    //    cell grid (built once, on the worker pool).
    let store = ReleaseStore::open_gridded([
        ("west", region_release(&data, west, 0)?),
        ("east", region_release(&data, east, 0)?),
    ])?;
    let q = RangeQuery::new(Rect::new(&[0.1, 0.1], &[0.4, 0.9]));
    let snapshot = store.snapshot();
    println!(
        "serving {} releases ({} nodes), v{}: answer = {:.1}",
        snapshot.shard_count(),
        snapshot.node_count(),
        snapshot.version(),
        snapshot.answer(&q)
    );

    // 2. Epoch swap: a fresh west release replaces the old one. Only the
    //    routing arena (shards + 1 = 3 nodes here) and the west shard's
    //    grid are rebuilt — the report proves it — and the pre-swap
    //    snapshot keeps answering epoch-0 bits for as long as we hold it.
    let held = store.snapshot();
    let held_answer = held.answer(&q);
    let report = store.swap("west", region_release(&data, west, 1)?)?;
    println!(
        "swapped west: v{}, rebuilt {} routing nodes + {} grid(s) \
         ({} cells), reused {} shard(s)",
        report.version,
        report.routing_nodes_rebuilt,
        report.grids_built,
        report.grid_cells_built,
        report.shards_reused
    );
    println!(
        "epoch 1 answer = {:.1}; retained epoch-0 snapshot still says {:.1}",
        store.snapshot().answer(&q),
        held.answer(&q)
    );
    assert_eq!(held.answer(&q).to_bits(), held_answer.to_bits());

    // 3. Persist the store: every serving release lands in an on-disk
    //    catalog as a privtree-bin v1 file (grids included) behind an
    //    atomically published catalog.toml manifest.
    let catalog_dir = std::env::temp_dir().join("privtree-catalog");
    let mut catalog = Catalog::open_or_create(&catalog_dir)?;
    let saved = store.persist_catalog(&mut catalog)?;
    println!(
        "\npersisted {saved} release(s) into {} ({} entries: {})",
        catalog_dir.display(),
        catalog.len(),
        catalog.keys().collect::<Vec<_>>().join(", ")
    );

    // 4. Warm start: reopen the catalog cold and rebuild the store from
    //    disk alone. Binary decode is one validated pass (no per-line
    //    parsing) and the shipped grids are adopted, not rebuilt — and
    //    the answers are bit-identical to the store we persisted.
    let reopened = Catalog::open(&catalog_dir)?;
    let warm = ReleaseStore::open_catalog(&reopened, true)?;
    assert_eq!(
        warm.snapshot().answer(&q).to_bits(),
        store.snapshot().answer(&q).to_bits(),
        "a warm-started store must answer the persisted epoch's exact bits"
    );
    println!(
        "warm-started {} release(s) from disk: answer = {:.1} (bit-identical), grids rebuilt: {}",
        warm.snapshot().shard_count(),
        warm.snapshot().answer(&q),
        warm.stats().grids_built
    );

    // 5. The same artifacts drive the standalone server: a text release
    //    for key=path serving, or the whole catalog via --catalog (which
    //    also enables the save/load protocol verbs).
    let path = std::env::temp_dir().join("west-epoch0.txt");
    std::fs::write(&path, frozen_to_text(&region_release(&data, west, 0)?))?;
    println!("\nwrote {}; try:", path.display());
    println!(
        "  printf 'count 0.1,0.1 0.4,0.9\\nstats\\nquit\\n' | \\\n    \
         target/release/privtree-serve --grids west={}",
        path.display()
    );
    println!(
        "  printf 'keys\\nstats\\nquit\\n' | \\\n    \
         target/release/privtree-serve --grids --catalog {}",
        catalog_dir.display()
    );
    Ok(())
}
