//! Private sequence modelling: build a PST with the Section 4 extension,
//! mine frequent strings, and generate synthetic sequences.
//!
//! ```sh
//! cargo run --release --example sequence_mining
//! ```

use privtree_suite::datagen::sequence::mooc_like;
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::dp::quantile::dp_quantile_int;
use privtree_suite::dp::rng::seeded;
use privtree_suite::eval::metrics::precision_at_k;
use privtree_suite::markov::data::SequenceDataset;
use privtree_suite::markov::private::private_pst;
use privtree_suite::markov::pst::SequenceModel;
use privtree_suite::markov::topk::{exact_topk, model_topk};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 40k learner behavior sequences over 7 action categories
    let raw = mooc_like(40_000, 3);
    println!(
        "dataset: {} sequences, |I| = {}, mean length {:.2}",
        raw.len(),
        raw.alphabet_size,
        raw.mean_length()
    );

    // Pick l⊤ privately as a 95% length quantile (footnote 2 of the
    // paper), spending a small slice of budget on it.
    let mut rng = seeded(9);
    let lengths: Vec<u32> = raw.sequences.iter().map(|s| s.len() as u32 + 1).collect();
    let l_top = dp_quantile_int(&lengths, 0.95, 200, Epsilon::new(0.1)?, &mut rng)?;
    println!("private 95% length quantile -> l_top = {l_top}");

    let data = SequenceDataset::new(&raw.sequences, raw.alphabet_size, l_top as usize);
    println!(
        "truncated {} / {} sequences",
        data.truncated_count(),
        data.len()
    );

    // the ε-DP PST (tree at ε/β, histograms at ε(β−1)/β)
    let model = private_pst(&data, Epsilon::new(1.0)?, &mut rng)?;
    println!(
        "released PST: {} nodes, depth {}",
        model.node_count(),
        model.tree().max_depth()
    );

    // top-20 frequent strings, private vs exact
    let private_top = model_topk(&model, 20, 8);
    let exact_top = exact_topk(&data, 20, 8);
    println!(
        "\ntop-20 frequent strings: precision = {:.2}",
        precision_at_k(&exact_top, &private_top, 20)
    );
    println!("{:<18} {:<18}", "private", "exact");
    for i in 0..8 {
        println!(
            "{:<18} {:<18}",
            format!("{:?}", private_top[i]),
            format!("{:?}", exact_top[i])
        );
    }

    // synthetic data generation from the private model
    println!("\nsynthetic sequences sampled from the private model:");
    for _ in 0..5 {
        println!("  {:?}", model.sample_sequence(&mut rng, 30));
    }
    Ok(())
}
