//! Quickstart: release a differentially private spatial synopsis with
//! PrivTree and answer range-count queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use privtree_suite::datagen::spatial::gowalla_like;
use privtree_suite::datagen::workload::{range_queries, QuerySize};
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::dp::rng::seeded;
use privtree_suite::spatial::geom::Rect;
use privtree_suite::spatial::quadtree::SplitConfig;
use privtree_suite::spatial::query::RangeCountSynopsis;
use privtree_suite::spatial::synopsis::privtree_synopsis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A sensitive dataset: 100k check-in locations (synthetic here;
    //    swap in your own PointSet).
    let data = gowalla_like(100_000, 42);
    let domain = Rect::unit(2);

    // 2. One call releases an ε-DP synopsis: PrivTree builds the
    //    decomposition with ε/2 and noisy leaf counts consume the other
    //    ε/2 (Section 3.4 of the paper).
    let epsilon = Epsilon::new(1.0)?;
    let mut rng = seeded(7);
    let synopsis = privtree_synopsis(&data, domain, SplitConfig::full(2), epsilon, &mut rng)?;

    println!("released PrivTree synopsis:");
    println!("  nodes     : {}", synopsis.node_count());
    println!("  max depth : {}", synopsis.max_depth());
    println!("  levels    : {:?}", synopsis.tree().depth_histogram());

    // 3. Answer range-count queries from the synopsis alone — the raw
    //    data is no longer needed (and was never part of the release).
    println!("\nrange-count queries (estimate vs exact):");
    for q in range_queries(&domain, QuerySize::Large, 5, 99) {
        let est = synopsis.answer(&q);
        let truth = data.count_in(&q.rect) as f64;
        println!(
            "  {}  est {:>9.1}  exact {:>7}  rel.err {:>6.2}%",
            q.rect,
            est,
            truth,
            100.0 * (est - truth).abs() / truth.max(100.0)
        );
    }
    Ok(())
}
