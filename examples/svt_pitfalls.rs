//! Why PrivTree is not "just SVT": reproduce the paper's Section 5
//! negative results interactively.
//!
//! ```sh
//! cargo run --release --example svt_pitfalls
//! ```

use privtree_suite::core::audit::audit_privtree;
use privtree_suite::core::domain::LineDomain;
use privtree_suite::core::params::PrivTreeParams;
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::svt::audit::{claim_2_log_ratio, lemma_5_1_log_ratio};

fn main() {
    let eps = 1.0;
    let lambda = 2.0 / eps; // what Claim 1 said would be enough

    println!("Claim 1 said: binary SVT with Lap(2/eps) noise is eps-DP.");
    println!("Exact privacy loss on the Lemma 5.1 counterexample:\n");
    println!("{:>4}  {:>10}  {:>10}", "k", "loss", "allowed");
    for k in [4usize, 8, 16, 32, 64] {
        let loss = lemma_5_1_log_ratio(k, lambda);
        println!(
            "{:>4}  {:>10.3}  {:>10.3}{}",
            k,
            loss,
            2.0 * eps,
            if loss > 2.0 * eps {
                "   <-- VIOLATION"
            } else {
                ""
            }
        );
    }

    println!("\nVanilla SVT (Claim 2) fares no better:");
    for k in [8usize, 16, 32] {
        println!(
            "  k = {k:>2}: loss = {:.3}  (predicted k/lambda = {:.3})",
            claim_2_log_ratio(k, lambda),
            k as f64 / lambda
        );
    }

    println!("\nPrivTree, by contrast, passes an exhaustive exact audit:");
    let params = PrivTreeParams::from_epsilon(Epsilon::new(eps).unwrap(), 2).unwrap();
    let base = vec![0.05, 0.06, 0.3, 0.62, 0.9];
    let mut worst = 0.0f64;
    for insert_at in [0.01, 0.26, 0.49, 0.51, 0.75, 0.99] {
        let mut d0 = LineDomain::new(base.clone()).with_min_width(0.2);
        let mut with = base.clone();
        with.push(insert_at);
        let mut d1 = LineDomain::new(with).with_min_width(0.2);
        worst = worst.max(audit_privtree(&mut d0, &mut d1, &params, 3));
    }
    println!("  worst loss over all tree shapes and insertions: {worst:.4} <= eps = {eps}");
    println!(
        "\n(The scale PrivTree pays for this: lambda = {:.3} vs SVT's illusory {:.3}.)",
        params.lambda, lambda
    );
}
