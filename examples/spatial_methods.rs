//! Compare PrivTree against the Section 6.1 baselines on a skewed spatial
//! dataset, and render the private synopsis as a density map.
//!
//! ```sh
//! cargo run --release --example spatial_methods
//! ```

use privtree_suite::baselines::{
    dawa_synopsis, hierarchy_synopsis, privelet_synopsis, ug_synopsis,
};
use privtree_suite::datagen::spatial::road_like;
use privtree_suite::datagen::viz::ascii_density;
use privtree_suite::datagen::workload::{range_queries, QuerySize};
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::dp::rng::seeded;
use privtree_suite::eval::error::{average_relative_error, smoothing_factor};
use privtree_suite::spatial::dataset::PointSet;
use privtree_suite::spatial::geom::Rect;
use privtree_suite::spatial::index::GridIndex;
use privtree_suite::spatial::quadtree::SplitConfig;
use privtree_suite::spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_suite::spatial::synopsis::privtree_synopsis;

fn score(syn: &dyn RangeCountSynopsis, queries: &[RangeQuery], truth: &[f64], n: usize) -> f64 {
    let est: Vec<f64> = queries.iter().map(|q| syn.answer(q)).collect();
    average_relative_error(&est, truth, smoothing_factor(n))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = road_like(300_000, 11);
    let domain = Rect::unit(2);
    let eps = Epsilon::new(0.4)?;

    println!("true density (road-like, 300k points):");
    println!("{}", ascii_density(&data, 0, 1, 64, 20));

    // exact answers for a medium workload
    let queries = range_queries(&domain, QuerySize::Medium, 400, 5);
    let index = GridIndex::build(&data, &domain);
    let truth: Vec<f64> = queries
        .iter()
        .map(|q| index.count(&data, &q.rect) as f64)
        .collect();

    println!("average relative error on 400 medium queries at eps = 0.4:");
    let privtree = privtree_synopsis(&data, domain, SplitConfig::full(2), eps, &mut seeded(1))?;
    println!(
        "  {:<10} {:>8.3}%   ({} nodes, depth {})",
        "PrivTree",
        100.0 * score(&privtree, &queries, &truth, data.len()),
        privtree.node_count(),
        privtree.max_depth()
    );
    let ug = ug_synopsis(&data, &domain, eps, 1.0, &mut seeded(2));
    println!(
        "  {:<10} {:>8.3}%",
        "UG",
        100.0 * score(&ug, &queries, &truth, data.len())
    );
    let hier = hierarchy_synopsis(&data, &domain, eps, 3, 64, &mut seeded(3));
    println!(
        "  {:<10} {:>8.3}%",
        "Hierarchy",
        100.0 * score(&hier, &queries, &truth, data.len())
    );
    let dawa = dawa_synopsis(&data, &domain, eps, 20, &mut seeded(4));
    println!(
        "  {:<10} {:>8.3}%",
        "DAWA",
        100.0 * score(&dawa, &queries, &truth, data.len())
    );
    let privelet = privelet_synopsis(&data, &domain, eps, 20, &mut seeded(5));
    println!(
        "  {:<10} {:>8.3}%",
        "Privelet*",
        100.0 * score(&privelet, &queries, &truth, data.len())
    );

    // reconstruct a density map from the private synopsis: sample each
    // display cell with a range query against the release
    println!("\nprivate density reconstructed from the PrivTree release:");
    let (w, h) = (64usize, 20usize);
    let mut private_points = PointSet::new(2);
    for row in 0..h {
        for col in 0..w {
            let q = RangeQuery::new(Rect::new(
                &[col as f64 / w as f64, row as f64 / h as f64],
                &[(col + 1) as f64 / w as f64, (row + 1) as f64 / h as f64],
            ));
            let c = privtree.answer(&q).max(0.0) as usize;
            // deposit a representative point per ~500 counted
            for _ in 0..(c / 500) {
                private_points
                    .push(&[(col as f64 + 0.5) / w as f64, (row as f64 + 0.5) / h as f64]);
            }
        }
    }
    println!("{}", ascii_density(&private_points, 0, 1, 64, 20));
    Ok(())
}
