//! Section 3.5, extension 1: PrivTree over a categorical taxonomy.
//!
//! Decompose a product taxonomy adaptively — popular subtrees get
//! expanded into fine categories, unpopular ones stay coarse — and then
//! release noisy counts for the leaves of the decomposition.
//!
//! ```sh
//! cargo run --release --example taxonomy_histogram
//! ```

use privtree_suite::core::counts::noisy_leaf_counts;
use privtree_suite::core::params::PrivTreeParams;
use privtree_suite::core::privtree::build_privtree;
use privtree_suite::core::taxonomy::{Taxonomy, TaxonomyDomain};
use privtree_suite::core::TreeDomain;
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::dp::mechanism::LaplaceMechanism;
use privtree_suite::dp::rng::seeded;
use rand::RngExt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a small retail taxonomy
    let mut tax = Taxonomy::new("all-products");
    let food = tax.add_child(tax.root(), "food");
    let fruit = tax.add_child(food, "fruit");
    let apples = tax.add_child(fruit, "apples");
    let bananas = tax.add_child(fruit, "bananas");
    let dairy = tax.add_child(food, "dairy");
    let milk = tax.add_child(dairy, "milk");
    let cheese = tax.add_child(dairy, "cheese");
    let tech = tax.add_child(tax.root(), "tech");
    let phones = tax.add_child(tech, "phones");
    let laptops = tax.add_child(tech, "laptops");
    let books = tax.add_child(tax.root(), "books");

    // synthetic purchases: food dominates, tech is niche, books are rare
    let mut rng = seeded(5);
    let leaves = [apples, bananas, milk, cheese, phones, laptops, books];
    let weights = [0.35, 0.25, 0.2, 0.1, 0.05, 0.03, 0.02];
    let mut purchases = Vec::new();
    for _ in 0..50_000 {
        let mut t = rng.random::<f64>();
        let mut pick = leaves[0];
        for (leaf, w) in leaves.iter().zip(weights) {
            t -= w;
            if t <= 0.0 {
                pick = *leaf;
                break;
            }
        }
        purchases.push(pick);
    }

    let mut domain = TaxonomyDomain::new(tax, &purchases);
    let epsilon = Epsilon::new(0.5)?;
    let (eps_tree, eps_counts) = epsilon.split_two(0.5)?;
    let params = PrivTreeParams::from_epsilon(eps_tree, domain.fanout())?;
    let tree = build_privtree(&mut domain, &params, &mut rng)?;
    let mech = LaplaceMechanism::new(eps_counts, 1.0)?;
    let counts = noisy_leaf_counts(&tree, &mech, |n| domain.score(n), &mut rng);

    println!("adaptive private taxonomy histogram (eps = 0.5):");
    let rendered = tree.render(|id, node| {
        format!(
            "{:<14} ~{:.0}",
            domain.taxonomy().name(*node),
            counts.get(id).max(0.0)
        )
    });
    println!("{rendered}");
    println!("note how the popular 'food' branch is expanded to concrete");
    println!("categories while niche branches stay coarse — the same");
    println!("adaptivity as the spatial quadtree, on categorical data.");
    Ok(())
}
