//! Integration: the full spatial pipeline across crates — datagen →
//! decomposition → noisy counts → query answering → evaluation.

use privtree_suite::baselines::{hierarchy_synopsis, ug_synopsis};
use privtree_suite::datagen::spatial::{gowalla_like, nyc_like, road_like};
use privtree_suite::datagen::workload::{range_queries, QuerySize};
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::dp::rng::seeded;
use privtree_suite::eval::error::{average_relative_error, smoothing_factor};
use privtree_suite::spatial::dataset::PointSet;
use privtree_suite::spatial::geom::Rect;
use privtree_suite::spatial::index::GridIndex;
use privtree_suite::spatial::quadtree::SplitConfig;
use privtree_suite::spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_suite::spatial::synopsis::{privtree_synopsis, simple_tree_synopsis};

fn workload(
    data: &PointSet,
    domain: &Rect,
    size: QuerySize,
    n: usize,
) -> (Vec<RangeQuery>, Vec<f64>) {
    let queries = range_queries(domain, size, n, 31);
    let idx = GridIndex::build(data, domain);
    let truth = queries
        .iter()
        .map(|q| idx.count(data, &q.rect) as f64)
        .collect();
    (queries, truth)
}

fn err_of(syn: &dyn RangeCountSynopsis, queries: &[RangeQuery], truth: &[f64], n: usize) -> f64 {
    let est: Vec<f64> = queries.iter().map(|q| syn.answer(q)).collect();
    average_relative_error(&est, truth, smoothing_factor(n))
}

/// The paper's headline, in miniature: on skewed road-like data PrivTree
/// beats UG, Hierarchy, and the height-limited SimpleTree.
#[test]
fn privtree_wins_on_skewed_data() {
    let data = road_like(120_000, 5);
    let domain = Rect::unit(2);
    let eps = Epsilon::new(0.8).unwrap();
    let (queries, truth) = workload(&data, &domain, QuerySize::Medium, 250);

    let reps = 3;
    let mut e_privtree = 0.0;
    let mut e_ug = 0.0;
    let mut e_hier = 0.0;
    let mut e_simple = 0.0;
    for rep in 0..reps {
        let pt = privtree_synopsis(
            &data,
            domain,
            SplitConfig::full(2),
            eps,
            &mut seeded(100 + rep),
        )
        .unwrap();
        e_privtree += err_of(&pt, &queries, &truth, data.len());
        let ug = ug_synopsis(&data, &domain, eps, 1.0, &mut seeded(200 + rep));
        e_ug += err_of(&ug, &queries, &truth, data.len());
        let hier = hierarchy_synopsis(&data, &domain, eps, 3, 64, &mut seeded(300 + rep));
        e_hier += err_of(&hier, &queries, &truth, data.len());
        let st = simple_tree_synopsis(
            &data,
            domain,
            SplitConfig::full(2),
            eps,
            5,
            2.0 * 5.0 / eps.get(),
            &mut seeded(400 + rep),
        )
        .unwrap();
        e_simple += err_of(&st, &queries, &truth, data.len());
    }
    assert!(
        e_privtree < e_ug && e_privtree < e_hier && e_privtree < e_simple,
        "PrivTree {e_privtree} vs UG {e_ug}, Hierarchy {e_hier}, SimpleTree {e_simple}"
    );
}

/// Error decreases monotonically-ish along the ε sweep for PrivTree.
#[test]
fn error_shrinks_with_budget() {
    let data = gowalla_like(60_000, 6);
    let domain = Rect::unit(2);
    let (queries, truth) = workload(&data, &domain, QuerySize::Large, 200);
    let mut errs = Vec::new();
    for (i, eps) in [0.05, 0.4, 1.6].iter().enumerate() {
        let mut total = 0.0;
        for rep in 0..3 {
            let syn = privtree_synopsis(
                &data,
                domain,
                SplitConfig::full(2),
                Epsilon::new(*eps).unwrap(),
                &mut seeded((i * 10 + rep) as u64),
            )
            .unwrap();
            total += err_of(&syn, &queries, &truth, data.len());
        }
        errs.push(total / 3.0);
    }
    assert!(
        errs[2] < errs[0],
        "ε=1.6 error {} should be well below ε=0.05 error {}",
        errs[2],
        errs[0]
    );
}

/// 4-d pipeline end to end (NYC-like, fanout 16).
#[test]
fn four_dimensional_pipeline() {
    let data = nyc_like(30_000, 7);
    let domain = Rect::unit(4);
    let (queries, truth) = workload(&data, &domain, QuerySize::Large, 100);
    let syn = privtree_synopsis(
        &data,
        domain,
        SplitConfig::full(4),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(8),
    )
    .unwrap();
    let err = err_of(&syn, &queries, &truth, data.len());
    assert!(err.is_finite() && err < 3.0, "4-d error = {err}");
    // total over the full domain should track cardinality
    let total = syn.answer(&RangeQuery::new(domain));
    assert!((total - 30_000.0).abs() < 3_000.0, "total = {total}");
}

/// The round-robin fanout variants all produce working synopses.
#[test]
fn fanout_variants_work() {
    let data = gowalla_like(20_000, 9);
    let domain = Rect::unit(2);
    let (queries, truth) = workload(&data, &domain, QuerySize::Large, 100);
    for arity in [1usize, 2] {
        let syn = privtree_synopsis(
            &data,
            domain,
            SplitConfig::partial(arity),
            Epsilon::new(1.0).unwrap(),
            &mut seeded(10 + arity as u64),
        )
        .unwrap();
        let err = err_of(&syn, &queries, &truth, data.len());
        assert!(err < 1.0, "arity {arity}: err = {err}");
    }
}

/// Release is structure + counts only: answering never touches the data.
#[test]
fn release_is_self_contained() {
    let data = gowalla_like(10_000, 12);
    let domain = Rect::unit(2);
    let syn = privtree_synopsis(
        &data,
        domain,
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(13),
    )
    .unwrap();
    drop(data); // the synopsis must stand alone
    let q = RangeQuery::new(Rect::new(&[0.25, 0.25], &[0.75, 0.75]));
    assert!(syn.answer(&q).is_finite());
}
