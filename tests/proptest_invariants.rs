//! Property-based tests on the workspace's core invariants.

use privtree_suite::baselines::hilbert::{
    hilbert_d2xy, hilbert_xy2d, morton_decode, morton_encode,
};
use privtree_suite::baselines::wavelet::{haar_forward, haar_inverse};
use privtree_suite::core::domain::{LineDomain, TreeDomain};
use privtree_suite::core::nonprivate::nonprivate_tree;
use privtree_suite::core::params::PrivTreeParams;
use privtree_suite::core::privtree::{build_privtree, build_privtree_sequential};
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::dp::laplace::Laplace;
use privtree_suite::dp::rho::{rho, rho_upper};
use privtree_suite::dp::rng::seeded;
use privtree_suite::eval::metrics::total_variation_distance;
use privtree_suite::markov::data::SequenceDataset;
use privtree_suite::spatial::dataset::PointSet;
use privtree_suite::spatial::geom::Rect;
use privtree_suite::spatial::index::GridIndex;
use privtree_suite::spatial::quadtree::SplitConfig;
use privtree_suite::spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_suite::spatial::synopsis::exact_synopsis;
use proptest::prelude::*;

proptest! {
    /// Lemma 3.1 over random parameters: ρ(x) ≤ ρ⊤(x).
    #[test]
    fn rho_bounded_by_upper(
        lambda in 0.05f64..20.0,
        theta in -50.0f64..50.0,
        dx in -40.0f64..80.0,
    ) {
        let x = theta + dx;
        prop_assert!(rho(x, theta, lambda) <= rho_upper(x, theta, lambda) + 1e-9);
    }

    /// Laplace CDF/SF/quantile consistency for random parameters.
    #[test]
    fn laplace_cdf_quantile_round_trip(
        mu in -100.0f64..100.0,
        lambda in 0.01f64..50.0,
        p in 0.001f64..0.999,
    ) {
        let d = Laplace::new(mu, lambda).unwrap();
        let x = d.inverse_cdf(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-9);
        prop_assert!((d.cdf(x) + d.sf(x) - 1.0).abs() < 1e-12);
    }

    /// Non-private decomposition: leaves partition the dataset count.
    #[test]
    fn leaves_partition_count(
        points in proptest::collection::vec(0.0f64..1.0, 0..200),
        theta in 0.0f64..20.0,
    ) {
        let n = points.len() as f64;
        let mut domain = LineDomain::new(points).with_min_width(1.0 / 64.0);
        let tree = nonprivate_tree(&mut domain, theta, None);
        let leaf_total: f64 = tree.leaf_ids().map(|id| domain.score(tree.payload(id))).sum();
        prop_assert_eq!(leaf_total, n);
        // parents precede children in the arena
        for id in tree.ids() {
            if let Some(p) = tree.parent(id) {
                prop_assert!(p < id);
            }
        }
    }

    /// GridIndex exact counting agrees with brute force on random data
    /// and random queries.
    #[test]
    fn grid_index_matches_bruteforce(
        coords in proptest::collection::vec(0.0f64..1.0, 2..400),
        qa in 0.0f64..1.0, qb in 0.0f64..1.0,
        qc in 0.0f64..1.0, qd in 0.0f64..1.0,
    ) {
        let n = coords.len() / 2 * 2;
        let ps = PointSet::from_flat(2, coords[..n].to_vec());
        let dom = Rect::unit(2);
        let idx = GridIndex::build_with_bins(&ps, &dom, 7);
        let q = Rect::new(&[qa.min(qb), qc.min(qd)], &[qa.max(qb), qc.max(qd)]);
        prop_assert_eq!(idx.count(&ps, &q), ps.count_in(&q) as u64);
    }

    /// Haar transform is a bijection (round trip) for random inputs.
    #[test]
    fn haar_round_trip(values in proptest::collection::vec(-100.0f64..100.0, 1usize..6)) {
        // build a power-of-two length vector from the seed values
        let len = 1usize << values.len();
        let mut v: Vec<f64> = (0..len).map(|i| values[i % values.len()] + i as f64).collect();
        let orig = v.clone();
        haar_forward(&mut v);
        haar_inverse(&mut v);
        for (a, b) in orig.iter().zip(&v) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    /// Hilbert and Morton mappings are inverse pairs.
    #[test]
    fn space_filling_curves_invert(h in 0u64..4096, code in 0u64..4096) {
        let side = 64u64;
        let (x, y) = hilbert_d2xy(side, h);
        prop_assert_eq!(hilbert_xy2d(side, x, y), h);
        let coords = morton_decode(code, 3, 4);
        prop_assert_eq!(morton_encode(&coords, 4), code);
    }

    /// TVD is a metric-ish: symmetric, zero on identical, in \[0, 1\].
    #[test]
    fn tvd_properties(
        p in proptest::collection::vec(0.0f64..10.0, 1..20),
        q in proptest::collection::vec(0.0f64..10.0, 1..20),
    ) {
        prop_assume!(p.iter().sum::<f64>() > 0.0 && q.iter().sum::<f64>() > 0.0);
        let d_pq = total_variation_distance(&p, &q);
        let d_qp = total_variation_distance(&q, &p);
        prop_assert!((d_pq - d_qp).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d_pq));
        prop_assert!(total_variation_distance(&p, &p) < 1e-12);
    }

    /// Sequence truncation never lengthens data and preserves counts.
    #[test]
    fn truncation_invariants(
        lens in proptest::collection::vec(0usize..40, 1..50),
        l_top in 1usize..30,
    ) {
        let seqs: Vec<Vec<u8>> = lens.iter().map(|l| vec![0u8; *l]).collect();
        let data = SequenceDataset::new(&seqs, 2, l_top);
        prop_assert_eq!(data.len(), seqs.len());
        for i in 0..data.len() {
            prop_assert!(data.raw(i).len() <= l_top);
            prop_assert!(data.measured_length(i) <= l_top);
            prop_assert!(data.measured_length(i) >= 1);
        }
    }

    /// The read-optimized frozen synopsis agrees with the tree-walk
    /// answer (and with itself through `answer_batch`) on random
    /// decompositions and random query rectangles.
    #[test]
    fn frozen_answer_batch_matches_tree_walk(
        coords in proptest::collection::vec(0.0f64..1.0, 2..300),
        theta in 0.0f64..30.0,
        qa in 0.0f64..1.0, qb in 0.0f64..1.0,
        qc in 0.0f64..1.0, qd in 0.0f64..1.0,
    ) {
        let n = coords.len() / 2 * 2;
        let ps = PointSet::from_flat(2, coords[..n].to_vec());
        let syn = exact_synopsis(&ps, Rect::unit(2), SplitConfig::full(2), theta, Some(8));
        let frozen = syn.freeze();
        let queries = [
            RangeQuery::new(Rect::new(&[qa.min(qb), qc.min(qd)], &[qa.max(qb), qc.max(qd)])),
            RangeQuery::new(Rect::unit(2)),
        ];
        let batch = frozen.answer_batch(&queries);
        for (q, b) in queries.iter().zip(&batch) {
            let a = syn.answer(q);
            prop_assert!((a - b).abs() < 1e-9, "tree-walk {a} vs frozen {b} on {}", q.rect);
            prop_assert_eq!(frozen.answer(q), *b);
        }
        // freezing is lossless
        let thawed = frozen.thaw();
        prop_assert_eq!(thawed.counts(), syn.counts());
    }

    /// The level-synchronous frontier builder reproduces the sequential
    /// node-at-a-time builder exactly, for any data and seed.
    #[test]
    fn frontier_builder_matches_sequential(
        coords in proptest::collection::vec(0.0f64..1.0, 0..150),
        seed in 0u64..100_000,
    ) {
        let mut d1 = LineDomain::new(coords).with_min_width(1.0 / 256.0);
        let mut d2 = d1.clone();
        let params = PrivTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 2).unwrap();
        let a = build_privtree(&mut d1, &params, &mut seeded(seed)).unwrap();
        let b = build_privtree_sequential(&mut d2, &params, &mut seeded(seed)).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (ia, ib) in a.ids().zip(b.ids()) {
            prop_assert_eq!(a.payload(ia), b.payload(ib));
            prop_assert_eq!(a.depth(ia), b.depth(ib));
            prop_assert_eq!(a.parent(ia), b.parent(ib));
        }
    }

    /// Rect bisection partitions volume exactly for random boxes.
    #[test]
    fn bisect_partitions_volume(
        lo0 in -10.0f64..10.0, side0 in 0.1f64..5.0,
        lo1 in -10.0f64..10.0, side1 in 0.1f64..5.0,
    ) {
        let r = Rect::new(&[lo0, lo1], &[lo0 + side0, lo1 + side1]);
        let kids = r.bisect(&[0, 1]);
        let total: f64 = kids.iter().map(Rect::volume).sum();
        prop_assert!((total - r.volume()).abs() < 1e-9);
        for i in 0..kids.len() {
            for j in (i + 1)..kids.len() {
                prop_assert!(!kids[i].intersects(&kids[j]));
            }
        }
    }
}
