//! Failure injection and boundary conditions across the public API.

use privtree_suite::baselines::{dawa_synopsis, privelet_synopsis, ug_synopsis};
use privtree_suite::core::params::{PrivTreeParams, SimpleTreeParams};
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::dp::rng::seeded;
use privtree_suite::dp::DpError;
use privtree_suite::markov::data::SequenceDataset;
use privtree_suite::markov::private::private_pst;
use privtree_suite::markov::pst::SequenceModel;
use privtree_suite::markov::topk::{exact_topk, model_topk};
use privtree_suite::spatial::dataset::PointSet;
use privtree_suite::spatial::geom::Rect;
use privtree_suite::spatial::quadtree::SplitConfig;
use privtree_suite::spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_suite::spatial::serialize::{from_text, to_text};
use privtree_suite::spatial::synopsis::privtree_synopsis;

/// An empty dataset still yields a valid (if boring) ε-DP release.
#[test]
fn empty_spatial_dataset() {
    let data = PointSet::new(2);
    let syn = privtree_synopsis(
        &data,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(1),
    )
    .unwrap();
    let total = syn.answer(&RangeQuery::new(Rect::unit(2)));
    // pure noise around zero
    assert!(total.abs() < 50.0, "empty-data total = {total}");
}

/// A single-point dataset round-trips the whole pipeline.
#[test]
fn single_point_dataset() {
    let mut data = PointSet::new(2);
    data.push(&[0.5, 0.5]);
    let syn = privtree_synopsis(
        &data,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(2),
    )
    .unwrap();
    assert!(syn.answer(&RangeQuery::new(Rect::unit(2))).is_finite());
    // and serialization survives it
    let back = from_text(&to_text(&syn)).unwrap();
    assert_eq!(back.node_count(), syn.node_count());
}

/// Coincident points cannot recurse forever: the depth floor holds.
#[test]
fn coincident_points_terminate() {
    let mut data = PointSet::new(2);
    for _ in 0..10_000 {
        data.push(&[0.123456, 0.654321]);
    }
    let syn = privtree_synopsis(
        &data,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.6).unwrap(),
        &mut seeded(3),
    )
    .unwrap();
    assert!(syn.max_depth() <= 60);
    let q = RangeQuery::new(Rect::new(&[0.12, 0.65], &[0.13, 0.66]));
    let est = syn.answer(&q);
    assert!((est - 10_000.0).abs() < 1_500.0, "est = {est}");
}

/// Degenerate privacy parameters are rejected, not silently accepted.
#[test]
fn invalid_parameters_error_out() {
    assert!(matches!(Epsilon::new(0.0), Err(DpError::InvalidEpsilon(_))));
    assert!(matches!(
        Epsilon::new(-2.0),
        Err(DpError::InvalidEpsilon(_))
    ));
    let e = Epsilon::new(1.0).unwrap();
    assert!(PrivTreeParams::from_epsilon(e, 0).is_err());
    assert!(PrivTreeParams::from_epsilon(e, 1).is_err());
    assert!(PrivTreeParams::from_epsilon_with_sensitivity(e, 4, f64::NAN).is_err());
    assert!(SimpleTreeParams::from_epsilon(e, 0, 0.0).is_err());
}

/// Empty sequence datasets and all-empty sequences behave.
#[test]
fn degenerate_sequence_data() {
    // all-empty sequences: every padded sequence is "$ &"
    let data = SequenceDataset::new(&vec![vec![]; 50], 3, 10);
    let model = private_pst(&data, Epsilon::new(1.0).unwrap(), &mut seeded(4)).unwrap();
    // estimates of any real symbol string should be (near) zero
    let est = model.estimate_count(&[0]);
    assert!(est < 30.0, "est = {est}");
    // sampling must terminate immediately or at the cap
    let mut rng = seeded(5);
    let s = model.sample_sequence(&mut rng, 10);
    assert!(s.len() <= 10);
    // top-k on the exact side of an empty-content dataset
    assert!(exact_topk(&data, 5, 4).is_empty());
    let got = model_topk(&model, 5, 4);
    assert!(got.len() <= 5);
}

/// One-sequence dataset: the PST pipeline holds.
#[test]
fn single_sequence_dataset() {
    let data = SequenceDataset::new(&[vec![0, 1, 0, 1]], 2, 10);
    let model = private_pst(&data, Epsilon::new(8.0).unwrap(), &mut seeded(6)).unwrap();
    assert!(model.node_count() >= 1);
    assert!(model.estimate_count(&[0, 1]).is_finite());
}

/// Baselines survive tiny datasets without panicking.
#[test]
fn baselines_on_tiny_data() {
    let mut data = PointSet::new(2);
    data.push(&[0.2, 0.8]);
    data.push(&[0.9, 0.1]);
    let dom = Rect::unit(2);
    let e = Epsilon::new(0.05).unwrap();
    let q = RangeQuery::new(Rect::new(&[0.0, 0.0], &[0.5, 1.0]));
    assert!(ug_synopsis(&data, &dom, e, 1.0, &mut seeded(7))
        .answer(&q)
        .is_finite());
    assert!(dawa_synopsis(&data, &dom, e, 8, &mut seeded(8))
        .answer(&q)
        .is_finite());
    assert!(privelet_synopsis(&data, &dom, e, 8, &mut seeded(9))
        .answer(&q)
        .is_finite());
}

/// Queries that degenerate to zero volume return finite answers.
#[test]
fn zero_volume_query() {
    let mut data = PointSet::new(2);
    for i in 0..100 {
        data.push(&[i as f64 / 100.0, 0.5]);
    }
    let syn = privtree_synopsis(
        &data,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(10),
    )
    .unwrap();
    let q = RangeQuery::new(Rect::new(&[0.3, 0.5], &[0.3, 0.5]));
    let est = syn.answer(&q);
    assert!(est.is_finite());
    assert!(
        est.abs() < 1e-6,
        "zero-volume query should be ~0, got {est}"
    );
}

/// l⊤ = 1 truncates everything down to single symbols.
#[test]
fn minimal_l_top() {
    let data = SequenceDataset::new(&[vec![0, 1, 2], vec![1]], 3, 1);
    assert_eq!(data.raw(0), &[0]);
    // a length-1 sequence measures 2 with its end marker, so it is cut too
    assert_eq!(data.raw(1), &[1]);
    assert_eq!(data.truncated_count(), 2);
    let model = private_pst(&data, Epsilon::new(4.0).unwrap(), &mut seeded(11)).unwrap();
    assert!(model.node_count() >= 1);
}
