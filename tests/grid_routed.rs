//! Grid-routed serving invariants: the accelerator must be invisible.
//!
//! [`GridRoutedSynopsis`] answers with a summed-area interior block plus
//! cell-anchored boundary-shell traversals. These tests pin the two
//! contracts of `crates/spatial/src/grid_route.rs`:
//!
//! * **whole answers** equal the plain frozen traversal to ≤ 1e-9
//!   (relative), for every release, resolution (including 1×1 and
//!   resolutions coarser/finer than the leaves), query shape (empty,
//!   degenerate, full-domain), and dimensionality;
//! * **anchored traversals are bit-identical** to root traversals of the
//!   same box whenever the entry node covers it — the property the
//!   boundary shell is built on.

use privtree_suite::dp::budget::Epsilon;
use privtree_suite::dp::rng::seeded;
use privtree_suite::runtime::WorkerPool;
use privtree_suite::spatial::dataset::PointSet;
use privtree_suite::spatial::geom::Rect;
use privtree_suite::spatial::grid_route::{CellGrid, GridRouteError, GridRoutedSynopsis};
use privtree_suite::spatial::quadtree::SplitConfig;
use privtree_suite::spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_suite::spatial::serialize::{grid_routed_from_text, grid_routed_to_text};
use privtree_suite::spatial::sharded::ShardedSynopsis;
use privtree_suite::spatial::synopsis::{privtree_synopsis, simple_tree_synopsis};
use privtree_suite::spatial::FrozenSynopsis;
use proptest::prelude::*;
use rand::RngExt;

fn point_set(dims: usize, coords: &[f64]) -> PointSet {
    let n = coords.len() / dims * dims;
    PointSet::from_flat(dims, coords[..n].to_vec())
}

fn release(dims: usize, points: &PointSet, seed: u64) -> FrozenSynopsis {
    privtree_synopsis(
        points,
        Rect::unit(dims),
        SplitConfig::full(dims),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed),
    )
    .unwrap()
    .freeze()
}

/// Queries from a flat pool, `2 * dims` values each; every third query is
/// degenerated to zero width along one axis, exercising the fallback.
fn workload(dims: usize, coords: &[f64]) -> Vec<RangeQuery> {
    coords
        .chunks_exact(2 * dims)
        .enumerate()
        .map(|(i, c)| {
            let mut lo = Vec::with_capacity(dims);
            let mut hi = Vec::with_capacity(dims);
            for k in 0..dims {
                let (a, b) = (c[2 * k], c[2 * k + 1]);
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            if i % 3 == 2 {
                hi[i % dims] = lo[i % dims]; // zero-width
            }
            RangeQuery::new(Rect::new(&lo, &hi))
        })
        .collect()
}

fn assert_close(frozen: &FrozenSynopsis, grid: &GridRoutedSynopsis, q: &RangeQuery) {
    let a = frozen.answer(q);
    let b = grid.answer(q);
    let tol = 1e-9 * a.abs().max(1.0);
    assert!(
        (a - b).abs() <= tol,
        "frozen {a} vs grid-routed {b} on {}",
        q.rect
    );
}

proptest! {
    /// Grid-routed answers equal the plain frozen traversal for random
    /// 2-d releases, random resolutions from 1×1 up to well past the
    /// leaf scale, and queries including degenerate and out-of-domain
    /// boxes.
    #[test]
    fn grid_routed_matches_frozen(
        coords in proptest::collection::vec(0.0f64..1.0, 8..400),
        qcoords in proptest::collection::vec(-0.2f64..1.2, 8..160),
        seed in 0u64..1000,
        bins_x in 1usize..96,
        bins_y in 1usize..96,
    ) {
        let frozen = release(2, &point_set(2, &coords), seed);
        let grid = GridRoutedSynopsis::with_bins(frozen.clone(), &[bins_x, bins_y]).unwrap();
        for q in workload(2, &qcoords) {
            let a = frozen.answer(&q);
            let b = grid.answer(&q);
            let tol = 1e-9 * a.abs().max(1.0);
            prop_assert!((a - b).abs() <= tol, "{} vs {} on {}", a, b, q.rect);
        }
        // the full domain answers with the root count, exactly
        let whole = RangeQuery::new(Rect::unit(2));
        prop_assert_eq!(frozen.answer(&whole).to_bits(), grid.answer(&whole).to_bits());
    }

    /// Anchored entry is bit-identical to the root traversal for any
    /// box the anchor's cell contains — the boundary-shell contract.
    #[test]
    fn anchored_traversals_bit_identical(
        coords in proptest::collection::vec(0.0f64..1.0, 8..400),
        cell_pool in proptest::collection::vec(0.0f64..1.0, 6..240),
        seed in 0u64..1000,
    ) {
        let frozen = release(2, &point_set(2, &coords), seed);
        let grid = CellGrid::build(&frozen, &[31, 17], None).unwrap();
        for chunk in cell_pool.chunks_exact(6) {
            let (cx, cy) = ((chunk[0] * 31.0) as usize % 31, (chunk[1] * 17.0) as usize % 17);
            let (a, b, c, d) = (chunk[2], chunk[3], chunk[4], chunk[5]);
            let cell = grid.cell_rect(&[cx, cy]);
            let lo = [
                cell.lo()[0] + a.min(b) * cell.side(0),
                cell.lo()[1] + c.min(d) * cell.side(1),
            ];
            let hi = [
                cell.lo()[0] + a.max(b) * cell.side(0),
                cell.lo()[1] + c.max(d) * cell.side(1),
            ];
            let q = RangeQuery::new(Rect::new(&lo, &hi));
            let anchor = grid.anchor_at(&[cx, cy]) as usize;
            prop_assert!(
                frozen.answer(&q).to_bits() == frozen.answer_from(anchor, &q).to_bits(),
                "anchored entry diverged at cell ({}, {})",
                cx,
                cy
            );
        }
    }

    /// Every batch path — sequential, Morton-reordered, pool-chunked at
    /// any worker count, and the trait's automatic dispatch — returns
    /// exactly the bits of the single-query path.
    #[test]
    fn batch_paths_bit_identical(
        coords in proptest::collection::vec(0.0f64..1.0, 8..300),
        qcoords in proptest::collection::vec(0.0f64..1.0, 8..200),
        seed in 0u64..1000,
        workers in 1usize..5,
    ) {
        let frozen = release(2, &point_set(2, &coords), seed);
        let grid = GridRoutedSynopsis::build(frozen).unwrap();
        let queries = workload(2, &qcoords);
        let reference: Vec<u64> = queries.iter().map(|q| grid.answer(q).to_bits()).collect();
        let check = |label: &str, got: Vec<f64>| {
            let bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits, reference, "{label}");
        };
        check("sequential", grid.answer_batch_sequential(&queries));
        check("morton", grid.answer_batch_morton(&queries));
        check("auto", grid.answer_batch(&queries));
        let pool = WorkerPool::new(workers);
        check("pooled", grid.answer_batch_with_pool(&queries, &pool));
    }
}

/// Higher-dimensional domains: the interior/boundary split, anchored
/// traversals, and Morton keys are all dimension-generic.
#[test]
fn three_and_four_dim_domains_match_frozen() {
    for (dims, bins) in [(3usize, vec![7usize, 4, 9]), (4, vec![3, 4, 2, 5])] {
        let mut rng = seeded(dims as u64);
        let mut ps = PointSet::new(dims);
        for _ in 0..4000 {
            let p: Vec<f64> = (0..dims)
                .map(|k| {
                    if k == 0 {
                        rng.random::<f64>() * 0.3
                    } else {
                        rng.random::<f64>()
                    }
                })
                .collect();
            ps.push(&p);
        }
        let frozen = release(dims, &ps, 77 + dims as u64);
        let grid = GridRoutedSynopsis::with_bins(frozen.clone(), &bins).unwrap();
        let mut rng = seeded(99 + dims as u64);
        for _ in 0..150 {
            let mut lo = Vec::with_capacity(dims);
            let mut hi = Vec::with_capacity(dims);
            for _ in 0..dims {
                let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            assert_close(&frozen, &grid, &RangeQuery::new(Rect::new(&lo, &hi)));
        }
        // degenerate and full-domain queries stay bit-exact (fallback)
        let whole = RangeQuery::new(Rect::unit(dims));
        assert_eq!(
            frozen.answer(&whole).to_bits(),
            grid.answer(&whole).to_bits()
        );
    }
}

/// SimpleTree's per-node counts are independently noisy (inconsistent),
/// so the build must refuse them rather than serve wrong interiors.
#[test]
fn inconsistent_counts_are_refused() {
    let mut rng = seeded(5);
    let mut ps = PointSet::new(2);
    for _ in 0..3000 {
        ps.push(&[rng.random::<f64>() * 0.4, rng.random::<f64>() * 0.4]);
    }
    let frozen = simple_tree_synopsis(
        &ps,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        5,
        30.0,
        &mut seeded(6),
    )
    .unwrap()
    .freeze();
    assert!(matches!(
        GridRoutedSynopsis::build(frozen),
        Err(GridRouteError::InconsistentCounts { .. })
    ));
}

/// Sharded serving with per-shard grids agrees with the plain sharded
/// engine (and therefore with the unsharded arena) to ≤ 1e-9.
#[test]
fn sharded_with_grids_matches_plain() {
    let mut rng = seeded(7);
    let mut ps = PointSet::new(2);
    for i in 0..8000 {
        if i % 4 == 0 {
            ps.push(&[rng.random::<f64>(), rng.random::<f64>()]);
        } else {
            ps.push(&[
                0.6 + rng.random::<f64>() * 0.1,
                0.2 + rng.random::<f64>() * 0.1,
            ]);
        }
    }
    let frozen = release(2, &ps, 8);
    let plain = ShardedSynopsis::from_frozen(&frozen, 2).unwrap();
    let gridded = ShardedSynopsis::from_frozen(&frozen, 2)
        .unwrap()
        .with_shard_grids()
        .unwrap();
    let mut rng = seeded(9);
    for _ in 0..300 {
        let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
        let (c, d) = (rng.random::<f64>(), rng.random::<f64>());
        let q = RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]));
        let x = plain.answer(&q);
        let y = gridded.answer(&q);
        let tol = 1e-9 * x.abs().max(1.0);
        assert!((x - y).abs() <= tol, "{x} vs {y} on {}", q.rect);
    }
}

/// A serialized grid-routed release answers bit-identically after a
/// round trip (the grid section ships the precomputation).
#[test]
fn serialized_grid_round_trips_bitwise() {
    let mut rng = seeded(11);
    let mut ps = PointSet::new(2);
    for _ in 0..5000 {
        ps.push(&[rng.random::<f64>() * 0.5, 0.3 + rng.random::<f64>() * 0.5]);
    }
    let grid = GridRoutedSynopsis::with_bins(release(2, &ps, 12), &[13, 11]).unwrap();
    let text = grid_routed_to_text(&grid);
    let back = grid_routed_from_text(&text).unwrap();
    let mut rng = seeded(13);
    for _ in 0..200 {
        let (a, b) = (rng.random::<f64>(), rng.random::<f64>());
        let (c, d) = (rng.random::<f64>(), rng.random::<f64>());
        let q = RangeQuery::new(Rect::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)]));
        assert_eq!(grid.answer(&q).to_bits(), back.answer(&q).to_bits());
    }
}
