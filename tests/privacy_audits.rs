//! Cross-crate privacy audits: the exact output-distribution machinery of
//! `privtree-core::audit` applied to the real application domains —
//! spatial quadtrees and prediction suffix trees — plus the SVT
//! counterexamples for contrast.

use privtree_suite::core::audit::{
    audit_privtree, enumerate_shapes, max_abs_log_ratio, privtree_log_prob,
};
use privtree_suite::core::params::PrivTreeParams;
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::markov::data::SequenceDataset;
use privtree_suite::markov::domain::PstDomain;
use privtree_suite::spatial::dataset::PointSet;
use privtree_suite::spatial::geom::Rect;
use privtree_suite::spatial::quadtree::{QuadDomain, SplitConfig};
use privtree_suite::svt::audit::lemma_5_1_log_ratio;

/// Theorem 3.1, audited on the real 2-d quadtree domain: enumerate every
/// tree shape to depth 2 (fanout 4 ⇒ 17 shapes) and every single-point
/// insertion, and verify the exact privacy loss stays within ε.
#[test]
fn quadtree_privtree_exact_audit() {
    let eps = 1.0;
    let params = PrivTreeParams::from_epsilon(Epsilon::new(eps).unwrap(), 4).unwrap();
    let base: Vec<[f64; 2]> = vec![
        [0.1, 0.1],
        [0.12, 0.11],
        [0.13, 0.12],
        [0.6, 0.7],
        [0.9, 0.2],
    ];
    let config = SplitConfig {
        arity_log2: 2,
        depth_floor: 2, // unsplittable past depth 2 keeps shapes finite
    };
    // depth-2 shapes cover the whole output space given the floor
    let shapes = enumerate_shapes(4, 2);
    for insert_at in [[0.11, 0.1], [0.4, 0.4], [0.95, 0.95], [0.26, 0.74]] {
        let mut d0 = PointSet::new(2);
        for p in &base {
            d0.push(p);
        }
        let mut d1 = d0.clone();
        d1.push(&insert_at);

        let mut dom0 = QuadDomain::new(&d0, Rect::unit(2), config);
        let mut dom1 = QuadDomain::new(&d1, Rect::unit(2), config);
        let lp0: Vec<f64> = shapes
            .iter()
            .map(|s| privtree_log_prob(&mut dom0, s, &params))
            .collect();
        let lp1: Vec<f64> = shapes
            .iter()
            .map(|s| privtree_log_prob(&mut dom1, s, &params))
            .collect();
        let worst = max_abs_log_ratio(&lp0, &lp1);
        assert!(
            worst <= eps + 1e-9,
            "insert {insert_at:?}: loss {worst} > ε = {eps}"
        );
    }
}

/// Theorem 4.1, audited on the real PST domain: adding one *symbol-long*
/// sequence to a dataset must cost at most ε/l⊤ per affected path step —
/// here we audit whole single-symbol sequence insertions, whose total
/// cost Theorem 4.1 bounds by ε·(length incl. &)/l⊤.
#[test]
fn pst_privtree_exact_audit() {
    let eps = 2.0;
    let l_top = 4usize;
    let alphabet = 2usize;
    let beta = alphabet + 1;
    let params = PrivTreeParams::from_epsilon_with_sensitivity(
        Epsilon::new(eps).unwrap(),
        beta,
        l_top as f64,
    )
    .unwrap();
    let base = vec![vec![0u8], vec![0, 1], vec![1], vec![0, 0]];
    // inserted sequence of length 1 (measured length 2 with &):
    // permitted loss = ε · 2 / l⊤
    let inserted = vec![0u8];
    let allowed = eps * 2.0 / l_top as f64;

    let d0 = SequenceDataset::new(&base, alphabet, l_top);
    let mut with = base.clone();
    with.push(inserted);
    let d1 = SequenceDataset::new(&with, alphabet, l_top);

    let mut dom0 = PstDomain::new(&d0);
    let mut dom1 = PstDomain::new(&d1);
    let shapes = enumerate_shapes(beta, 2);
    let lp0: Vec<f64> = shapes
        .iter()
        .map(|s| privtree_log_prob(&mut dom0, s, &params))
        .collect();
    let lp1: Vec<f64> = shapes
        .iter()
        .map(|s| privtree_log_prob(&mut dom1, s, &params))
        .collect();
    let worst = max_abs_log_ratio(&lp0, &lp1);
    assert!(
        worst <= allowed + 1e-9,
        "PST audit: loss {worst} > allowed {allowed}"
    );
}

/// Contrast: at the same nominal ε the binary SVT's loss blows up while
/// PrivTree's stays bounded — the Section 5 story in one test.
#[test]
fn privtree_bounded_while_svt_explodes() {
    let eps = 1.0;
    // PrivTree on a 1-d toy domain
    let params = PrivTreeParams::from_epsilon(Epsilon::new(eps).unwrap(), 2).unwrap();
    let base = vec![0.01, 0.02, 0.55, 0.8];
    let mut d0 = privtree_suite::core::domain::LineDomain::new(base.clone()).with_min_width(0.2);
    let mut with = base;
    with.push(0.01);
    let mut d1 = privtree_suite::core::domain::LineDomain::new(with).with_min_width(0.2);
    let privtree_loss = audit_privtree(&mut d0, &mut d1, &params, 3);
    assert!(privtree_loss <= eps + 1e-9);

    // binary SVT with the Claim-1 noise scale on 64 queries
    let svt_loss = lemma_5_1_log_ratio(64, 2.0 / eps);
    assert!(
        svt_loss > 10.0 * eps,
        "SVT loss {svt_loss} should dwarf ε = {eps}"
    );
}
