//! Serving-engine invariants: parallelism must never change output.
//!
//! The worker pool's contract (ordered collection of pure chunked tasks)
//! and the sharded read path's carried-accumulator traversal both promise
//! **bit-identical** results — not merely close ones. These tests pin
//! that promise across worker counts and shard cut depths.

use privtree_suite::core::params::PrivTreeParams;
use privtree_suite::core::privtree::build_privtree;
use privtree_suite::core::tree::Tree;
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::dp::rng::seeded;
use privtree_suite::runtime::WorkerPool;
use privtree_suite::spatial::dataset::PointSet;
use privtree_suite::spatial::geom::Rect;
use privtree_suite::spatial::quadtree::{QuadDomain, QuadNode, SplitConfig};
use privtree_suite::spatial::query::{RangeCountSynopsis, RangeQuery};
use privtree_suite::spatial::sharded::ShardedSynopsis;
use privtree_suite::spatial::synopsis::privtree_synopsis;
use privtree_suite::spatial::FrozenSynopsis;
use proptest::prelude::*;
use rand::RngExt;

/// 2-d point set from a flat coordinate pool (odd trailing value dropped).
fn point_set(coords: &[f64]) -> PointSet {
    let n = coords.len() / 2 * 2;
    PointSet::from_flat(2, coords[..n].to_vec())
}

/// Range queries from a flat coordinate pool, four values each.
fn workload(coords: &[f64]) -> Vec<RangeQuery> {
    coords
        .chunks_exact(4)
        .map(|c| {
            RangeQuery::new(Rect::new(
                &[c[0].min(c[1]), c[2].min(c[3])],
                &[c[0].max(c[1]), c[2].max(c[3])],
            ))
        })
        .collect()
}

fn frozen_release(points: &PointSet, seed: u64) -> FrozenSynopsis {
    privtree_synopsis(
        points,
        Rect::unit(2),
        SplitConfig::full(2),
        Epsilon::new(1.0).unwrap(),
        &mut seeded(seed),
    )
    .unwrap()
    .freeze()
}

/// Bit-level fingerprint of a built tree: every node's box and segment.
fn tree_fingerprint(tree: &Tree<QuadNode>) -> Vec<(Vec<u64>, Vec<u64>, usize)> {
    tree.ids()
        .map(|id| {
            let n = tree.payload(id);
            (
                n.rect.lo().iter().map(|x| x.to_bits()).collect(),
                n.rect.hi().iter().map(|x| x.to_bits()).collect(),
                n.count(),
            )
        })
        .collect()
}

proptest! {
    /// Re-sharding a release at any depth answers every query with
    /// exactly the bits the unsharded frozen arena produces.
    #[test]
    fn sharded_answers_match_unsharded_exactly(
        coords in collection::vec(0.0f64..1.0, 8..400),
        qcoords in collection::vec(0.0f64..1.0, 4..120),
        seed in 0u64..1000,
        cut in 0u32..6,
    ) {
        let ps = point_set(&coords);
        let frozen = frozen_release(&ps, seed);
        let sharded = ShardedSynopsis::from_frozen(&frozen, cut).unwrap();
        for q in workload(&qcoords) {
            prop_assert_eq!(frozen.answer(&q).to_bits(), sharded.answer(&q).to_bits());
        }
    }

    /// Pool-backed batch answering is bit-identical to the sequential
    /// loop for every worker count, on both read engines.
    #[test]
    fn pooled_batches_bit_identical_across_worker_counts(
        coords in collection::vec(0.0f64..1.0, 8..400),
        qcoords in collection::vec(0.0f64..1.0, 4..160),
        seed in 0u64..1000,
    ) {
        let ps = point_set(&coords);
        let frozen = frozen_release(&ps, seed);
        let sharded = ShardedSynopsis::from_frozen(&frozen, 1).unwrap();
        let queries = workload(&qcoords);
        let frozen_ref: Vec<u64> = frozen
            .answer_batch_sequential(&queries)
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let sharded_ref: Vec<u64> = sharded
            .answer_batch_sequential(&queries)
            .iter()
            .map(|x| x.to_bits())
            .collect();
        for workers in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let f: Vec<u64> = frozen
                .answer_batch_with_pool(&queries, &pool)
                .iter()
                .map(|x| x.to_bits())
                .collect();
            prop_assert!(f == frozen_ref, "frozen batch diverged at workers = {}", workers);
            let s: Vec<u64> = sharded
                .answer_batch_with_pool(&queries, &pool)
                .iter()
                .map(|x| x.to_bits())
                .collect();
            prop_assert!(s == sharded_ref, "sharded batch diverged at workers = {}", workers);
        }
    }

    /// Pool-backed frontier builds produce bit-identical trees for every
    /// worker count (an explicit pool always engages, bypassing the
    /// large-level threshold, so this exercises the pooled path even on
    /// small inputs).
    #[test]
    fn pooled_builds_bit_identical_across_worker_counts(
        coords in collection::vec(0.0f64..1.0, 8..600),
        seed in 0u64..1000,
    ) {
        let ps = point_set(&coords);
        let params = PrivTreeParams::from_epsilon(Epsilon::new(1.0).unwrap(), 4).unwrap();
        let reference = {
            let pool = WorkerPool::new(1);
            let mut dom = QuadDomain::quadtree(&ps, Rect::unit(2)).with_pool(&pool);
            tree_fingerprint(&build_privtree(&mut dom, &params, &mut seeded(seed)).unwrap())
        };
        for workers in [2usize, 4, 8] {
            let pool = WorkerPool::new(workers);
            let mut dom = QuadDomain::quadtree(&ps, Rect::unit(2)).with_pool(&pool);
            let tree = build_privtree(&mut dom, &params, &mut seeded(seed)).unwrap();
            prop_assert!(
                tree_fingerprint(&tree) == reference,
                "build diverged at workers = {}",
                workers
            );
        }
    }
}

/// The trait-level `answer_batch` (which may engage the shared global
/// pool on workloads this large) agrees bitwise with the sequential path.
#[test]
fn trait_answer_batch_matches_sequential_on_large_workload() {
    let mut rng = seeded(77);
    let mut ps = PointSet::new(2);
    for _ in 0..20_000 {
        ps.push(&[rng.random::<f64>() * 0.3, rng.random::<f64>() * 0.3 + 0.5]);
    }
    let frozen = frozen_release(&ps, 78);
    let sharded = ShardedSynopsis::from_frozen(&frozen, 2).unwrap();
    let queries: Vec<RangeQuery> = (0..2048)
        .map(|_| {
            let cx = rng.random::<f64>() * 0.9;
            let cy = rng.random::<f64>() * 0.9;
            let w = 0.01 + rng.random::<f64>() * 0.3;
            RangeQuery::new(Rect::new(
                &[cx, cy],
                &[(cx + w).min(1.0), (cy + w).min(1.0)],
            ))
        })
        .collect();
    for (auto, seq) in frozen
        .answer_batch(&queries)
        .iter()
        .zip(frozen.answer_batch_sequential(&queries))
    {
        assert_eq!(auto.to_bits(), seq.to_bits());
    }
    for (auto, seq) in sharded
        .answer_batch(&queries)
        .iter()
        .zip(sharded.answer_batch_sequential(&queries))
    {
        assert_eq!(auto.to_bits(), seq.to_bits());
    }
}

/// A multi-release deployment: four quadrant releases served as shards
/// answer quadrant-local queries exactly as the standalone releases do.
#[test]
fn multi_release_sharding_routes_correctly() {
    let quadrants = [
        Rect::new(&[0.0, 0.0], &[0.5, 0.5]),
        Rect::new(&[0.5, 0.0], &[1.0, 0.5]),
        Rect::new(&[0.0, 0.5], &[0.5, 1.0]),
        Rect::new(&[0.5, 0.5], &[1.0, 1.0]),
    ];
    let mut releases = Vec::new();
    for (i, region) in quadrants.iter().enumerate() {
        let mut rng = seeded(100 + i as u64);
        let mut ps = PointSet::new(2);
        for _ in 0..2000 {
            ps.push(&[
                region.lo()[0] + rng.random::<f64>() * region.side(0),
                region.lo()[1] + rng.random::<f64>() * region.side(1),
            ]);
        }
        releases.push(
            privtree_synopsis(
                &ps,
                *region,
                SplitConfig::full(2),
                Epsilon::new(1.0).unwrap(),
                &mut seeded(200 + i as u64),
            )
            .unwrap()
            .freeze(),
        );
    }
    let sharded = ShardedSynopsis::from_releases(releases.clone()).unwrap();
    assert_eq!(sharded.shard_count(), 4);
    let mut rng = seeded(300);
    for (release, region) in releases.iter().zip(&quadrants) {
        for _ in 0..50 {
            let cx = region.lo()[0] + rng.random::<f64>() * region.side(0) * 0.8;
            let cy = region.lo()[1] + rng.random::<f64>() * region.side(1) * 0.8;
            let w = rng.random::<f64>() * 0.1;
            let q = RangeQuery::new(Rect::new(
                &[cx, cy],
                &[(cx + w).min(region.hi()[0]), (cy + w).min(region.hi()[1])],
            ));
            // a query inside one region is answered by that shard alone
            assert_eq!(sharded.answer(&q).to_bits(), release.answer(&q).to_bits());
        }
    }
}
