//! Integration: every randomized pipeline in the workspace is a pure
//! function of its seed — the property the experiment harness depends on.

use privtree_suite::baselines::{dawa_synopsis, ug_synopsis};
use privtree_suite::datagen::sequence::msnbc_like;
use privtree_suite::datagen::spatial::{beijing_like, road_like};
use privtree_suite::datagen::workload::{range_queries, QuerySize};
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::dp::rng::seeded;
use privtree_suite::markov::data::SequenceDataset;
use privtree_suite::markov::em::em_topk;
use privtree_suite::markov::private::private_pst;
use privtree_suite::markov::pst::SequenceModel;
use privtree_suite::spatial::geom::Rect;
use privtree_suite::spatial::quadtree::SplitConfig;
use privtree_suite::spatial::query::RangeCountSynopsis;
use privtree_suite::spatial::synopsis::privtree_synopsis;
use privtree_suite::svt::variants::binary_svt;

#[test]
fn datasets_are_seed_deterministic() {
    assert_eq!(
        road_like(2000, 1).point(1999),
        road_like(2000, 1).point(1999)
    );
    assert_eq!(
        beijing_like(1000, 2).point(999),
        beijing_like(1000, 2).point(999)
    );
    assert_eq!(msnbc_like(100, 3).sequences, msnbc_like(100, 3).sequences);
    let a = range_queries(&Rect::unit(2), QuerySize::Small, 5, 4);
    let b = range_queries(&Rect::unit(2), QuerySize::Small, 5, 4);
    assert_eq!(a[4].rect, b[4].rect);
}

#[test]
fn full_spatial_pipeline_is_deterministic() {
    let data = beijing_like(5_000, 5);
    let q = range_queries(&Rect::unit(4), QuerySize::Large, 3, 6);
    let run = |seed: u64| -> Vec<f64> {
        let syn = privtree_synopsis(
            &data,
            Rect::unit(4),
            SplitConfig::full(4),
            Epsilon::new(0.8).unwrap(),
            &mut seeded(seed),
        )
        .unwrap();
        q.iter().map(|x| syn.answer(x)).collect()
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43), "different seeds must differ");
}

/// The frozen serving representation is a pure function of the release:
/// freezing the same synopsis gives identical batch answers, and those
/// agree with the tree walk.
#[test]
fn frozen_read_path_matches_tree_walk() {
    let data = beijing_like(5_000, 5);
    let queries = range_queries(&Rect::unit(4), QuerySize::Medium, 64, 12);
    let syn = privtree_synopsis(
        &data,
        Rect::unit(4),
        SplitConfig::full(4),
        Epsilon::new(0.8).unwrap(),
        &mut seeded(42),
    )
    .unwrap();
    let frozen = syn.freeze();
    assert_eq!(frozen.node_count(), syn.node_count());
    let walk: Vec<f64> = queries.iter().map(|q| syn.answer(q)).collect();
    let batch = frozen.answer_batch(&queries);
    for (a, b) in walk.iter().zip(&batch) {
        assert!((a - b).abs() < 1e-9, "tree-walk {a} vs frozen {b}");
    }
    // and freezing twice is identical
    assert_eq!(batch, syn.freeze().answer_batch(&queries));
}

#[test]
fn baseline_builds_are_deterministic() {
    let data = beijing_like(3_000, 7);
    let dom = Rect::unit(4);
    let e = Epsilon::new(0.4).unwrap();
    let a = ug_synopsis(&data, &dom, e, 1.0, &mut seeded(1));
    let b = ug_synopsis(&data, &dom, e, 1.0, &mut seeded(1));
    assert_eq!(a.values(), b.values());
    let c = dawa_synopsis(&data, &dom, e, 12, &mut seeded(2));
    let d = dawa_synopsis(&data, &dom, e, 12, &mut seeded(2));
    assert_eq!(c.values(), d.values());
}

#[test]
fn sequence_pipeline_is_deterministic() {
    let raw = msnbc_like(2_000, 8);
    let data = SequenceDataset::new(&raw.sequences, raw.alphabet_size, 20);
    let e = Epsilon::new(1.0).unwrap();
    let m1 = private_pst(&data, e, &mut seeded(9)).unwrap();
    let m2 = private_pst(&data, e, &mut seeded(9)).unwrap();
    assert_eq!(m1.node_count(), m2.node_count());
    assert_eq!(m1.estimate_count(&[0, 1]), m2.estimate_count(&[0, 1]));
    assert_eq!(
        em_topk(&data, 5, 6, e, &mut seeded(10)),
        em_topk(&data, 5, 6, e, &mut seeded(10))
    );
}

#[test]
fn svt_runs_are_deterministic() {
    let answers = [3.0, -1.0, 0.5, 10.0];
    assert_eq!(
        binary_svt(&answers, 0.0, 2.0, &mut seeded(11)),
        binary_svt(&answers, 0.0, 2.0, &mut seeded(11))
    );
}
