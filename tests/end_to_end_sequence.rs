//! Integration: the full sequence pipeline — datagen → truncation →
//! private PST / N-gram / EM → top-k mining and synthetic generation.

use privtree_suite::datagen::sequence::{mooc_like, msnbc_like};
use privtree_suite::dp::budget::Epsilon;
use privtree_suite::dp::rng::seeded;
use privtree_suite::eval::metrics::{length_histogram, precision_at_k, total_variation_distance};
use privtree_suite::markov::data::SequenceDataset;
use privtree_suite::markov::em::em_topk;
use privtree_suite::markov::ngram::ngram_model;
use privtree_suite::markov::private::private_pst;
use privtree_suite::markov::pst::SequenceModel;
use privtree_suite::markov::topk::{exact_topk, model_topk};

/// Figure 6's shape in miniature: PrivTree's top-k precision beats EM at a
/// generous budget on mooc-like data.
#[test]
fn privtree_beats_em_on_topk() {
    let raw = mooc_like(15_000, 1);
    let truncated = SequenceDataset::new(&raw.sequences, raw.alphabet_size, 50);
    let untruncated = SequenceDataset::new(&raw.sequences, raw.alphabet_size, 10_000);
    let k = 50;
    let exact = exact_topk(&untruncated, k, 8);
    let eps = Epsilon::new(1.6).unwrap();

    let mut p_pt = 0.0;
    let mut p_em = 0.0;
    let reps = 3;
    for rep in 0..reps {
        let model = private_pst(&truncated, eps, &mut seeded(10 + rep)).unwrap();
        p_pt += precision_at_k(&exact, &model_topk(&model, k, 8), k);
        let em = em_topk(&truncated, k, 8, eps, &mut seeded(20 + rep));
        p_em += precision_at_k(&exact, &em, k);
    }
    assert!(
        p_pt > p_em,
        "PrivTree precision {p_pt} should beat EM {p_em}"
    );
    assert!(
        p_pt / reps as f64 > 0.5,
        "PrivTree precision too low: {p_pt}"
    );
}

/// Figure 7's shape in miniature: synthetic data from the private PST has
/// a small length-distribution TVD at a healthy budget.
#[test]
fn length_distribution_tvd_is_small() {
    let raw = msnbc_like(20_000, 2);
    let l_top = 20usize;
    let truncated = SequenceDataset::new(&raw.sequences, raw.alphabet_size, l_top);
    let true_hist = length_histogram(raw.sequences.iter().map(Vec::len), l_top + 10);

    let model = private_pst(&truncated, Epsilon::new(1.6).unwrap(), &mut seeded(3)).unwrap();
    let mut rng = seeded(4);
    let lens = (0..20_000).map(|_| model.sample_sequence(&mut rng, l_top).len());
    let hist = length_histogram(lens, l_top + 10);
    let tvd = total_variation_distance(&true_hist, &hist);
    assert!(tvd < 0.25, "TVD = {tvd}");
}

/// The N-gram baseline runs end to end and loses to PrivTree at small ε
/// on the long-context mooc-like data (the h-dilemma at work).
#[test]
fn ngram_pipeline_works() {
    let raw = mooc_like(15_000, 5);
    let truncated = SequenceDataset::new(&raw.sequences, raw.alphabet_size, 50);
    let untruncated = SequenceDataset::new(&raw.sequences, raw.alphabet_size, 10_000);
    let k = 50;
    let exact = exact_topk(&untruncated, k, 8);

    let eps = Epsilon::new(0.1).unwrap();
    let mut p_pt = 0.0;
    let mut p_ng = 0.0;
    for rep in 0..3 {
        let pt = private_pst(&truncated, eps, &mut seeded(30 + rep)).unwrap();
        p_pt += precision_at_k(&exact, &model_topk(&pt, k, 8), k);
        let ng = ngram_model(&truncated, eps, 5, &mut seeded(40 + rep));
        p_ng += precision_at_k(&exact, &model_topk(&ng, k, 8), k);
    }
    assert!((0.0..=3.0).contains(&p_ng));
    assert!(
        p_pt >= p_ng,
        "PrivTree {p_pt} should be at least N-gram {p_ng} at eps = 0.1"
    );
}

/// Truncation bookkeeping flows through the pipeline.
#[test]
fn truncation_statistics() {
    let raw = mooc_like(10_000, 6);
    let data = SequenceDataset::new(&raw.sequences, raw.alphabet_size, 50);
    // Table 3 shape: a few percent of sequences are truncated
    let frac = data.truncated_count() as f64 / data.len() as f64;
    assert!(frac > 0.001 && frac < 0.2, "truncated fraction {frac}");
    for i in 0..data.len() {
        assert!(data.measured_length(i) <= 50);
    }
}
