//! Umbrella crate for the PrivTree reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so the examples and
//! integration tests (and downstream users who just want "the paper") can
//! depend on a single package:
//!
//! * [`dp`] — differential-privacy primitives (Laplace mechanism, budgets,
//!   exponential mechanism, the ρ/ρ⊤ analysis of Section 3.2).
//! * [`core`] — decomposition trees, PrivTree (Algorithm 2), SimpleTree
//!   (Algorithm 1), the noise-free tree `T*`, and exact privacy audits.
//!   Both private builders are **level-synchronous**: each frontier level
//!   is scored and noised in one deterministic pass and then split as one
//!   `TreeDomain::split_frontier` batch (bit-identical to the sequential
//!   reference loops, which are kept as `build_*_sequential`).
//! * [`spatial`] — points, rectangles, quadtree domains, private spatial
//!   synopses, and range-count query answering (Sections 2.2 and 3).
//!   Domains own their scratch permutation directly (no `RefCell`, so
//!   they are `Send`), and releases can be frozen into the
//!   structure-of-arrays `FrozenSynopsis` whose `answer_batch` serves
//!   query-heavy workloads without pointer chasing.
//! * [`baselines`] — UG, AG, Hierarchy, a Privelet*-style wavelet
//!   mechanism, and a DAWA-style two-stage method (Section 6.1).
//! * [`markov`] — prediction suffix trees and the PrivTree extension for
//!   sequence data, plus the N-gram and EM baselines (Sections 4 and 6.2).
//! * [`runtime`] — the persistent deterministic worker pool both hot
//!   paths run on: fixed worker threads, channel-fed chunked tasks,
//!   ordered result collection (pooled builds and batch answers are
//!   bit-identical to sequential for every worker count) — plus
//!   `ArcCell`, the atomic snapshot-publication slot the engine swaps
//!   epochs through.
//! * [`engine`] — the epoch-aware serving layer: `ReleaseStore` holds
//!   named releases (epoch/region key → frozen arena + optional cell
//!   grid), publishes immutable `Snapshot`s readers load in two atomic
//!   ops, and swaps/retires releases by rebuilding only the small
//!   routing arena plus the touched shard's grid. The `privtree-serve`
//!   binary serves a store over stdin or TCP, warm-starts from an
//!   on-disk catalog (`--catalog`), and persists releases back to it.
//! * [`store`] — release persistence: the `privtree-bin v1` binary
//!   columnar format (length-prefixed, CRC-checksummed little-endian
//!   sections; decodes in one validated pass with no per-line parsing)
//!   and the on-disk release catalog (`catalog.toml` manifest, atomic
//!   write-temp-then-rename publish). Binary and text loads of the same
//!   release answer bit-identically.
//! * [`svt`] — the four Sparse Vector Technique variants and the privacy
//!   audits reproducing Lemma 5.1 and Appendix A.
//! * [`datagen`] — seeded synthetic datasets standing in for the paper's
//!   road/Gowalla/NYC/Beijing/mooc/msnbc data (see DESIGN.md §3).
//! * [`eval`] — relative error, precision@k, total variation distance, and
//!   the experiment runner.
//!
//! # Example
//!
//! Release an ε-differentially private spatial synopsis and answer a
//! range-count query from the release alone:
//!
//! ```
//! use privtree_suite::dp::budget::Epsilon;
//! use privtree_suite::dp::rng::seeded;
//! use privtree_suite::spatial::dataset::PointSet;
//! use privtree_suite::spatial::geom::Rect;
//! use privtree_suite::spatial::quadtree::SplitConfig;
//! use privtree_suite::spatial::query::{RangeCountSynopsis, RangeQuery};
//! use privtree_suite::spatial::synopsis::privtree_synopsis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut data = PointSet::new(2);
//! for i in 0..1000 {
//!     let t = i as f64 / 1000.0;
//!     data.push(&[0.2 + 0.1 * t, 0.3 + 0.05 * t]); // a dense street
//! }
//! let synopsis = privtree_synopsis(
//!     &data,
//!     Rect::unit(2),
//!     SplitConfig::full(2),
//!     Epsilon::new(1.0)?,
//!     &mut seeded(42),
//! )?;
//! let q = RangeQuery::new(Rect::new(&[0.0, 0.0], &[0.5, 0.5]));
//! let estimate = synopsis.answer(&q);
//! assert!((estimate - 1000.0).abs() < 200.0);
//! # Ok(())
//! # }
//! ```

pub use privtree_baselines as baselines;
pub use privtree_core as core;
pub use privtree_datagen as datagen;
pub use privtree_dp as dp;
pub use privtree_engine as engine;
pub use privtree_eval as eval;
pub use privtree_markov as markov;
pub use privtree_runtime as runtime;
pub use privtree_spatial as spatial;
pub use privtree_store as store;
pub use privtree_svt as svt;
